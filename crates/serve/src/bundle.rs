//! Versioned model-bundle persistence: the `NFB1` envelope.
//!
//! A *bundle* is the unit a serving process loads: one or more trained
//! [`LatencyPredictor`]s (an ensemble ships its members together) plus the
//! snapshot of encoding-suite normalization its supplement needs. The
//! format nests the per-predictor `NFP1` envelopes:
//!
//! ```text
//! magic "NFB1" | u32 version (=1) | u32 member count
//!   | per member: u32 byte count | NFP1 predictor envelope
//! | u8 norms flag | if 1: u32 dim | dim f32 means | dim f32 stds (ZCP)
//! ```
//!
//! Only the **ZCP** supplement is snapshot-servable: its features derive
//! from the architecture alone, so the fitted
//! [`ColumnStats`] are the entire suite state the server needs
//! ([`EncodingSuite::zcp_stats`]). Arch2Vec/CATE/CAZ supplements embed
//! trained encoder weights and are rejected at bundle construction rather
//! than silently mis-served.
//!
//! [`EncodingSuite::zcp_stats`]: nasflat_encode::EncodingSuite::zcp_stats

use nasflat_core::{BatchSession, LatencyPredictor, ModelIoError, PredictorMeta};
use nasflat_encode::{zcp_features, ColumnStats, EncodingKind, EncodingSuite};
use nasflat_space::{Arch, Space};
use nasflat_tensor::{ByteReader, ByteWriter, StreamError, StreamReader};

use crate::error::ServeError;

/// Magic prefix of the bundle format ("NasFlat Bundle v1").
const MAGIC: &[u8; 4] = b"NFB1";

/// Bundle version written by this build.
const VERSION: u32 = 1;

/// Why a bundle could not be constructed or read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BundleError {
    /// A bundle needs at least one member.
    Empty,
    /// Members disagree on space, devices, supplement, or width; the detail
    /// names the first divergence.
    MemberMismatch(String),
    /// The configured supplement needs trained encoders (anything but ZCP)
    /// and cannot be served from a normalization snapshot.
    UnsupportedSupplement(&'static str),
    /// The members configure a ZCP supplement but no normalization stats
    /// were provided.
    MissingNorms,
    /// The normalization stats' width disagrees with the members'
    /// supplementary width.
    NormsDimMismatch {
        /// Width of the provided stats.
        stats: usize,
        /// Supplementary width the members expect.
        expected: usize,
    },
    /// A nested predictor envelope (or the bundle framing) failed to parse.
    Model(ModelIoError),
}

impl core::fmt::Display for BundleError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BundleError::Empty => write!(f, "bundle needs at least one member"),
            BundleError::MemberMismatch(detail) => {
                write!(f, "bundle members disagree: {detail}")
            }
            BundleError::UnsupportedSupplement(label) => write!(
                f,
                "supplement {label} needs trained encoders and cannot be bundled \
                 (only ZCP normalization can be snapshot)"
            ),
            BundleError::MissingNorms => {
                write!(f, "members use a ZCP supplement but no norms were provided")
            }
            BundleError::NormsDimMismatch { stats, expected } => write!(
                f,
                "normalization stats have width {stats}, members expect {expected}"
            ),
            BundleError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BundleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BundleError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelIoError> for BundleError {
    fn from(e: ModelIoError) -> Self {
        BundleError::Model(e)
    }
}

impl From<nasflat_tensor::WireError> for BundleError {
    fn from(e: nasflat_tensor::WireError) -> Self {
        BundleError::Model(e.into())
    }
}

/// One or more trained predictors plus the suite-normalization snapshot
/// they serve with — the artifact a registry loads by name.
///
/// All members share one space, device list, and supplement configuration
/// (validated at construction and again on load). A multi-member bundle is
/// served as the **arithmetic mean** of its members' scores, accumulated in
/// member order — a per-query-defined aggregate that batched and per-query
/// serving compute identically, bit for bit.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    members: Vec<LatencyPredictor>,
    zcp_stats: Option<ColumnStats>,
}

impl ModelBundle {
    /// Validates and assembles a bundle from ensemble members and an
    /// optional ZCP-normalization snapshot.
    ///
    /// # Errors
    /// [`BundleError::Empty`] without members; [`BundleError::MemberMismatch`]
    /// when members disagree on space/devices/supplement/width;
    /// [`BundleError::UnsupportedSupplement`] for non-ZCP supplements;
    /// [`BundleError::MissingNorms`] / [`BundleError::NormsDimMismatch`]
    /// when the snapshot is absent or mis-sized for a ZCP supplement.
    pub fn new(
        members: Vec<LatencyPredictor>,
        zcp_stats: Option<ColumnStats>,
    ) -> Result<Self, BundleError> {
        let first = members.first().ok_or(BundleError::Empty)?;
        for (i, m) in members.iter().enumerate().skip(1) {
            if m.space() != first.space() {
                return Err(BundleError::MemberMismatch(format!(
                    "member {i} space {:?} != {:?}",
                    m.space(),
                    first.space()
                )));
            }
            if m.devices() != first.devices() {
                return Err(BundleError::MemberMismatch(format!(
                    "member {i} device list differs"
                )));
            }
            if m.supp_dim() != first.supp_dim()
                || m.config().supplement != first.config().supplement
            {
                return Err(BundleError::MemberMismatch(format!(
                    "member {i} supplement configuration differs"
                )));
            }
        }
        match first.config().supplement {
            None => {}
            Some(EncodingKind::Zcp) => match &zcp_stats {
                None => return Err(BundleError::MissingNorms),
                Some(stats) if stats.dim() != first.supp_dim() => {
                    return Err(BundleError::NormsDimMismatch {
                        stats: stats.dim(),
                        expected: first.supp_dim(),
                    })
                }
                Some(_) => {}
            },
            Some(other) => return Err(BundleError::UnsupportedSupplement(other.label())),
        }
        Ok(ModelBundle { members, zcp_stats })
    }

    /// A single-predictor bundle (the common non-ensemble case).
    ///
    /// # Errors
    /// Same conditions as [`ModelBundle::new`] — notably, a predictor
    /// configured with a ZCP supplement needs [`ModelBundle::with_suite`]
    /// instead, since `single` carries no normalization snapshot.
    pub fn single(predictor: LatencyPredictor) -> Result<Self, BundleError> {
        ModelBundle::new(vec![predictor], None)
    }

    /// Assembles a bundle and snapshots the ZCP normalization out of
    /// `suite` when (and only when) the members configure a ZCP supplement.
    ///
    /// # Errors
    /// Same conditions as [`ModelBundle::new`].
    pub fn with_suite(
        members: Vec<LatencyPredictor>,
        suite: &EncodingSuite,
    ) -> Result<Self, BundleError> {
        let wants_zcp = members
            .first()
            .is_some_and(|m| m.config().supplement == Some(EncodingKind::Zcp));
        let stats = wants_zcp.then(|| suite.zcp_stats().clone());
        ModelBundle::new(members, stats)
    }

    /// The ensemble members (at least one).
    pub fn members(&self) -> &[LatencyPredictor] {
        &self.members
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// The ZCP normalization snapshot, when the supplement needs one.
    pub fn zcp_stats(&self) -> Option<&ColumnStats> {
        self.zcp_stats.as_ref()
    }

    /// The shared search space.
    pub fn space(&self) -> Space {
        self.members[0].space()
    }

    /// The shared ordered device list (index = embedding row = the device
    /// field of a serve query).
    pub fn devices(&self) -> &[String] {
        self.members[0].devices()
    }

    /// The supplementary row for an architecture, per the bundle's
    /// supplement configuration (ZCP features normalized by the snapshot;
    /// `None` when no supplement is configured).
    pub fn supp_row(&self, arch: &Arch) -> Option<Vec<f32>> {
        self.zcp_stats.as_ref().map(|stats| {
            let mut row = zcp_features(arch);
            stats.apply(&mut row);
            row
        })
    }

    /// The reference scoring path: one (arch, device) query on fresh tapes,
    /// averaged over members in order. Batched serving reproduces this bit
    /// for bit.
    ///
    /// # Panics
    /// Panics on space mismatch or an out-of-range device index.
    pub fn predict_one(&self, arch: &Arch, device: usize) -> f32 {
        let supp = self.supp_row(arch);
        let sum: f32 = self
            .members
            .iter()
            .map(|m| m.predict(arch, device, supp.as_deref()))
            .sum();
        sum / self.members.len() as f32
    }

    /// Opens one [`BatchSession`] per member — the per-worker tape state
    /// the dynamic batcher holds.
    pub fn open_sessions(&self) -> Vec<BatchSession<'_>> {
        self.members.iter().map(|m| m.session()).collect()
    }

    /// Scores a coalesced batch of mixed-device queries on the given member
    /// sessions: each member evaluates the whole batch (one multi-query
    /// block-diagonal pass for two or more queries, a per-query session
    /// pass for a singleton), and the per-query member scores are averaged
    /// in member order — bitwise the same aggregate as
    /// [`ModelBundle::predict_one`] per query.
    ///
    /// # Panics
    /// Panics if `sessions` were not opened on this bundle's members (in
    /// order), or on query validation failures.
    pub fn score_batch_in(
        &self,
        sessions: &mut [BatchSession<'_>],
        archs: &[&Arch],
        devices: &[usize],
    ) -> Vec<f32> {
        assert_eq!(
            sessions.len(),
            self.members.len(),
            "one session per bundle member"
        );
        let supp: Option<Vec<Vec<f32>>> = self.zcp_stats.is_some().then(|| {
            archs
                .iter()
                .map(|a| self.supp_row(a).expect("stats set"))
                .collect()
        });
        let mut acc = vec![0.0f32; archs.len()];
        for (member, session) in self.members.iter().zip(sessions.iter_mut()) {
            assert!(
                std::ptr::eq(session.predictor(), member),
                "session belongs to a different predictor"
            );
            let scores = if archs.len() >= 2 {
                session.predict_batched_tape_devices(archs, devices, supp.as_deref())
            } else {
                vec![session.predict(
                    archs[0],
                    devices[0],
                    supp.as_ref().map(|rows| rows[0].as_slice()),
                )]
            };
            for (a, s) in acc.iter_mut().zip(&scores) {
                *a += s;
            }
        }
        let k = self.members.len() as f32;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }

    /// Serializes the bundle into the versioned `NFB1` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_raw(MAGIC);
        w.put_u32(VERSION);
        w.put_len(self.members.len());
        for m in &self.members {
            w.put_bytes(&m.to_bytes());
        }
        match &self.zcp_stats {
            None => w.put_u8(0),
            Some(stats) => {
                w.put_u8(1);
                w.put_len(stats.dim());
                w.put_f32_slice(stats.means());
                w.put_f32_slice(stats.stds());
            }
        }
        w.into_vec()
    }

    /// Reads a bundle written by [`ModelBundle::to_bytes`], re-running the
    /// full construction validation. Reloaded bundles serve bit-identical
    /// predictions.
    ///
    /// # Errors
    /// Any framing, nested-envelope, or validation failure — a truncated or
    /// corrupted file never panics and never half-loads.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BundleError> {
        let mut r = ByteReader::new(bytes);
        if r.get_raw(4).map_err(|_| ModelIoError::BadMagic)? != MAGIC {
            return Err(ModelIoError::BadMagic.into());
        }
        let version = r.get_u32().map_err(ModelIoError::from)?;
        if version != VERSION {
            return Err(ModelIoError::UnsupportedVersion(version).into());
        }
        let count = r.get_len().map_err(ModelIoError::from)?;
        if count == 0 {
            return Err(BundleError::Empty);
        }
        // Each member occupies at least its length prefix.
        if count > r.remaining() / 4 {
            return Err(ModelIoError::Truncated.into());
        }
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            let blob = r.get_bytes().map_err(ModelIoError::from)?;
            members.push(LatencyPredictor::from_bytes(blob)?);
        }
        let zcp_stats = match r.get_u8().map_err(ModelIoError::from)? {
            0 => None,
            1 => {
                let dim = r.get_len().map_err(ModelIoError::from)?;
                let means = r.get_f32_vec(dim).map_err(ModelIoError::from)?;
                let stds = r.get_f32_vec(dim).map_err(ModelIoError::from)?;
                Some(ColumnStats::from_parts(means, stds))
            }
            flag => {
                return Err(BundleError::Model(ModelIoError::Corrupt(format!(
                    "invalid norms flag {flag}"
                ))))
            }
        };
        if !r.is_empty() {
            // Trailing bytes mean file damage (botched concatenation or a
            // partial overwrite), not a loadable bundle.
            return Err(BundleError::Model(ModelIoError::Corrupt(format!(
                "{} trailing bytes after the norms section",
                r.remaining()
            ))));
        }
        ModelBundle::new(members, zcp_stats)
    }

    /// Streaming decode of an `NFB1` bundle from a seekable reader holding
    /// `len` bytes — the disk path of the tiered store.
    ///
    /// Unlike buffering the whole file and calling
    /// [`ModelBundle::from_bytes`], this reads one member envelope at a
    /// time, so peak transient memory is the largest member, not the whole
    /// bundle file. The decoded bundle is byte-for-byte the same as the
    /// in-memory path — reload is bit-identical.
    ///
    /// # Errors
    /// [`ServeError::Bundle`] for any framing/validation failure (same
    /// grammar as [`ModelBundle::from_bytes`]), [`ServeError::Io`] when the
    /// underlying reader fails.
    pub fn from_reader<R: std::io::Read + std::io::Seek>(
        reader: R,
        len: u64,
    ) -> Result<Self, ServeError> {
        let mut r = StreamReader::new(reader, len);
        let count = read_bundle_header(&mut r)?;
        let mut members = Vec::with_capacity(count);
        for _ in 0..count {
            let blob = r.get_blob().map_err(stream_err)?;
            members.push(LatencyPredictor::from_bytes(&blob).map_err(BundleError::from)?);
        }
        let zcp_stats = match r.get_u8().map_err(stream_err)? {
            0 => None,
            1 => {
                let dim = r.get_len().map_err(stream_err)?;
                let means = r.get_f32_vec(dim).map_err(stream_err)?;
                let stds = r.get_f32_vec(dim).map_err(stream_err)?;
                Some(ColumnStats::from_parts(means, stds))
            }
            flag => {
                return Err(corrupt(format!("invalid norms flag {flag}")));
            }
        };
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after the norms section",
                r.remaining()
            )));
        }
        Ok(ModelBundle::new(members, zcp_stats)?)
    }

    /// Opens `path` and streams the bundle via
    /// [`ModelBundle::from_reader`], never buffering the whole file.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the file cannot be opened or read,
    /// [`ServeError::Bundle`] when its contents are not a valid bundle.
    pub fn load_path(path: &std::path::Path) -> Result<Self, ServeError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        ModelBundle::from_reader(std::io::BufReader::new(file), len)
    }
}

/// First chunk size when parsing a member's metadata prefix: generously
/// covers the fixed header, a full device roster, and the config fields of
/// every real bundle, so the growth loop below almost never iterates.
const META_CHUNK: usize = 4_096;

fn stream_err(e: StreamError) -> ServeError {
    match e {
        StreamError::Wire(w) => ServeError::Bundle(BundleError::Model(w.into())),
        StreamError::Io(e) => ServeError::Io(e),
    }
}

fn corrupt(detail: String) -> ServeError {
    ServeError::Bundle(BundleError::Model(ModelIoError::Corrupt(detail)))
}

/// Validates the NFB1 magic/version framing and returns the member count.
fn read_bundle_header<R: std::io::Read + std::io::Seek>(
    r: &mut StreamReader<R>,
) -> Result<usize, ServeError> {
    let magic = r.get_vec(4).map_err(|e| match e {
        StreamError::Io(io) => ServeError::Io(io),
        StreamError::Wire(_) => ServeError::Bundle(ModelIoError::BadMagic.into()),
    })?;
    if magic != MAGIC {
        return Err(ServeError::Bundle(ModelIoError::BadMagic.into()));
    }
    let version = r.get_u32().map_err(stream_err)?;
    if version != VERSION {
        return Err(ServeError::Bundle(
            ModelIoError::UnsupportedVersion(version).into(),
        ));
    }
    let count = r.get_len().map_err(stream_err)?;
    if count == 0 {
        return Err(ServeError::Bundle(BundleError::Empty));
    }
    // Each member occupies at least its length prefix.
    if count > r.remaining() / 4 {
        return Err(ServeError::Bundle(ModelIoError::Truncated.into()));
    }
    Ok(count)
}

/// The warm-tier view of a bundle: the `NFB1` metadata parsed up front with
/// every weight blob **skipped**, so holding a warm entry costs a few
/// hundred bytes regardless of model size.
///
/// A warm entry answers the questions a router needs — which space, which
/// device roster, how many ensemble members — while full weight
/// deserialization ([`ModelBundle::from_reader`]) is deferred until first
/// predict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleMeta {
    space: Space,
    devices: Vec<String>,
    num_members: usize,
    supp_dim: usize,
    has_norms: bool,
}

impl BundleMeta {
    /// The warm view of an already-decoded bundle (the hot→warm demotion
    /// path: no disk read needed).
    pub fn of(bundle: &ModelBundle) -> Self {
        BundleMeta {
            space: bundle.space(),
            devices: bundle.devices().to_vec(),
            num_members: bundle.num_members(),
            supp_dim: bundle.members()[0].supp_dim(),
            has_norms: bundle.zcp_stats().is_some(),
        }
    }

    /// Parses the metadata of an `NFB1` stream holding `len` bytes,
    /// seeking past every weight blob (the durable→warm promotion path).
    ///
    /// The first member's `NFP1` metadata prefix is fully validated via
    /// [`PredictorMeta::from_prefix`]; the remaining members' envelopes and
    /// all weight bytes are skipped, their validation deferred to the full
    /// decode at first predict.
    ///
    /// # Errors
    /// [`ServeError::Bundle`] on framing/validation failures,
    /// [`ServeError::Io`] when the underlying reader fails.
    pub fn from_reader<R: std::io::Read + std::io::Seek>(
        reader: R,
        len: u64,
    ) -> Result<Self, ServeError> {
        let mut r = StreamReader::new(reader, len);
        let count = read_bundle_header(&mut r)?;
        // Member 0: parse the metadata prefix from a bounded chunk, growing
        // only if a pathological roster overflows it, then seek past the
        // weights.
        let mlen = r.get_len().map_err(stream_err)?;
        if mlen > r.remaining() {
            return Err(ServeError::Bundle(ModelIoError::Truncated.into()));
        }
        let mut buf = r.get_vec(mlen.min(META_CHUNK)).map_err(stream_err)?;
        let meta = loop {
            match PredictorMeta::from_prefix(&buf) {
                Ok((meta, consumed)) => {
                    if consumed + meta.weight_bytes != mlen {
                        return Err(corrupt(format!(
                            "member 0 declares {} envelope bytes but holds {mlen}",
                            consumed + meta.weight_bytes
                        )));
                    }
                    r.skip(mlen - buf.len()).map_err(stream_err)?;
                    break meta;
                }
                Err(ModelIoError::Truncated) if buf.len() < mlen => {
                    let grow = (mlen - buf.len()).min(buf.len().max(META_CHUNK));
                    buf.extend(r.get_vec(grow).map_err(stream_err)?);
                }
                Err(e) => return Err(ServeError::Bundle(e.into())),
            }
        };
        // Remaining members: skip whole envelopes.
        for _ in 1..count {
            let mlen = r.get_len().map_err(stream_err)?;
            r.skip(mlen).map_err(stream_err)?;
        }
        let has_norms = match r.get_u8().map_err(stream_err)? {
            0 => false,
            1 => {
                let dim = r.get_len().map_err(stream_err)?;
                r.skip(
                    dim.checked_mul(8)
                        .ok_or_else(|| ServeError::Bundle(ModelIoError::Truncated.into()))?,
                )
                .map_err(stream_err)?;
                true
            }
            flag => return Err(corrupt(format!("invalid norms flag {flag}"))),
        };
        if !r.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes after the norms section",
                r.remaining()
            )));
        }
        Ok(BundleMeta {
            space: meta.space,
            devices: meta.devices,
            num_members: count,
            supp_dim: meta.supp_dim,
            has_norms,
        })
    }

    /// Opens `path` and parses the warm metadata via
    /// [`BundleMeta::from_reader`].
    ///
    /// # Errors
    /// Same conditions as [`BundleMeta::from_reader`], plus
    /// [`ServeError::Io`] when the file cannot be opened.
    pub fn load_path(path: &std::path::Path) -> Result<Self, ServeError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        BundleMeta::from_reader(std::io::BufReader::new(file), len)
    }

    /// The bundle's search space.
    pub fn space(&self) -> Space {
        self.space
    }

    /// The bundle's ordered device roster.
    pub fn devices(&self) -> &[String] {
        &self.devices
    }

    /// Number of ensemble members the full bundle holds.
    pub fn num_members(&self) -> usize {
        self.num_members
    }

    /// The supplementary-encoding width (0 without a supplement).
    pub fn supp_dim(&self) -> usize {
        self.supp_dim
    }

    /// Whether the bundle carries a ZCP normalization snapshot.
    pub fn has_norms(&self) -> bool {
        self.has_norms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasflat_core::PredictorConfig;

    fn tiny(seed: u64, supplement: Option<EncodingKind>) -> LatencyPredictor {
        let mut cfg = PredictorConfig::quick().with_seed(seed);
        cfg.op_dim = 8;
        cfg.hw_dim = 8;
        cfg.node_dim = 8;
        cfg.ophw_gnn_dims = vec![12];
        cfg.ophw_mlp_dims = vec![12];
        cfg.gnn_dims = vec![12];
        cfg.head_dims = vec![16];
        cfg.supplement = supplement;
        let supp_dim = if supplement.is_some() { 13 } else { 0 };
        LatencyPredictor::new(
            Space::Nb201,
            vec!["a".into(), "b".into(), "c".into()],
            supp_dim,
            cfg,
        )
    }

    #[test]
    fn validation_rejects_bad_bundles() {
        assert_eq!(
            ModelBundle::new(vec![], None).unwrap_err(),
            BundleError::Empty
        );
        // Mismatched device lists.
        let other = LatencyPredictor::new(
            Space::Nb201,
            vec!["only".into()],
            0,
            nasflat_core::PredictorConfig::quick(),
        );
        let err = ModelBundle::new(vec![tiny(0, None), other], None).unwrap_err();
        assert!(matches!(err, BundleError::MemberMismatch(_)), "{err}");
        // ZCP supplement without norms.
        assert_eq!(
            ModelBundle::single(tiny(0, Some(EncodingKind::Zcp))).unwrap_err(),
            BundleError::MissingNorms
        );
        // Norms of the wrong width.
        let bad_stats = ColumnStats::from_parts(vec![0.0; 5], vec![1.0; 5]);
        assert_eq!(
            ModelBundle::new(vec![tiny(0, Some(EncodingKind::Zcp))], Some(bad_stats)).unwrap_err(),
            BundleError::NormsDimMismatch {
                stats: 5,
                expected: 13
            }
        );
        // Learned-encoder supplements are refused outright.
        assert_eq!(
            ModelBundle::single(tiny(0, Some(EncodingKind::Caz))).unwrap_err(),
            BundleError::UnsupportedSupplement("CAZ")
        );
    }

    #[test]
    fn ensemble_mean_matches_hand_computation() {
        let bundle = ModelBundle::new(vec![tiny(1, None), tiny(2, None)], None).unwrap();
        let arch = Arch::nb201_from_index(77);
        let expect = (bundle.members()[0].predict(&arch, 1, None)
            + bundle.members()[1].predict(&arch, 1, None))
            / 2.0;
        assert_eq!(bundle.predict_one(&arch, 1).to_bits(), expect.to_bits());
    }

    #[test]
    fn batched_scoring_matches_per_query_bitwise() {
        let stats = ColumnStats::from_parts(vec![0.5; 13], vec![2.0; 13]);
        for bundle in [
            ModelBundle::new(vec![tiny(3, None), tiny(4, None), tiny(5, None)], None).unwrap(),
            ModelBundle::new(vec![tiny(6, Some(EncodingKind::Zcp))], Some(stats)).unwrap(),
        ] {
            let archs: Vec<Arch> = (0..7u64).map(|i| Arch::nb201_from_index(i * 391)).collect();
            let refs: Vec<&Arch> = archs.iter().collect();
            let devices: Vec<usize> = (0..7).map(|i| i % 3).collect();
            let mut sessions = bundle.open_sessions();
            let batched = bundle.score_batch_in(&mut sessions, &refs, &devices);
            for (i, (arch, &dev)) in archs.iter().zip(&devices).enumerate() {
                assert_eq!(
                    batched[i].to_bits(),
                    bundle.predict_one(arch, dev).to_bits(),
                    "query {i}"
                );
            }
            // Singleton batches take the per-query session path and agree too.
            let one = bundle.score_batch_in(&mut sessions, &refs[2..3], &devices[2..3]);
            assert_eq!(
                one[0].to_bits(),
                bundle.predict_one(&archs[2], devices[2]).to_bits()
            );
        }
    }

    #[test]
    fn byte_round_trip_preserves_predictions() {
        let stats = ColumnStats::from_parts(
            (0..13).map(|i| i as f32 * 0.1).collect(),
            (0..13).map(|i| 1.0 + i as f32 * 0.05).collect(),
        );
        let bundle = ModelBundle::new(
            vec![
                tiny(7, Some(EncodingKind::Zcp)),
                tiny(8, Some(EncodingKind::Zcp)),
            ],
            Some(stats),
        )
        .unwrap();
        let reloaded = ModelBundle::from_bytes(&bundle.to_bytes()).unwrap();
        assert_eq!(reloaded.num_members(), 2);
        let arch = Arch::nb201_from_index(9000);
        for dev in 0..3 {
            assert_eq!(
                reloaded.predict_one(&arch, dev).to_bits(),
                bundle.predict_one(&arch, dev).to_bits()
            );
        }
    }

    #[test]
    fn streamed_decode_matches_buffered_decode_bitwise() {
        let stats = ColumnStats::from_parts(vec![0.5; 13], vec![2.0; 13]);
        let bundle = ModelBundle::new(
            vec![
                tiny(21, Some(EncodingKind::Zcp)),
                tiny(22, Some(EncodingKind::Zcp)),
            ],
            Some(stats),
        )
        .unwrap();
        let bytes = bundle.to_bytes();
        let streamed =
            ModelBundle::from_reader(std::io::Cursor::new(&bytes), bytes.len() as u64).unwrap();
        let buffered = ModelBundle::from_bytes(&bytes).unwrap();
        let arch = Arch::nb201_from_index(4141);
        for dev in 0..3 {
            assert_eq!(
                streamed.predict_one(&arch, dev).to_bits(),
                buffered.predict_one(&arch, dev).to_bits(),
                "dev {dev}"
            );
        }
        // Truncations stream-error cleanly too, never panicking.
        for cut in [0, 5, 9, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                ModelBundle::from_reader(std::io::Cursor::new(&bytes[..cut]), cut as u64).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn warm_metadata_sees_shape_without_decoding_weights() {
        let stats = ColumnStats::from_parts(vec![0.5; 13], vec![2.0; 13]);
        let bundle = ModelBundle::new(
            vec![
                tiny(23, Some(EncodingKind::Zcp)),
                tiny(24, Some(EncodingKind::Zcp)),
            ],
            Some(stats),
        )
        .unwrap();
        let bytes = bundle.to_bytes();
        let meta = BundleMeta::from_reader(std::io::Cursor::new(&bytes), bytes.len() as u64)
            .expect("warm parse");
        assert_eq!(meta, BundleMeta::of(&bundle));
        assert_eq!(meta.space(), Space::Nb201);
        assert_eq!(meta.devices(), bundle.devices());
        assert_eq!(meta.num_members(), 2);
        assert_eq!(meta.supp_dim(), 13);
        assert!(meta.has_norms());
        // Warm parsing validates framing: truncations are clean errors.
        for cut in [0, 5, 9, 13, 40, bytes.len() - 1] {
            assert!(
                BundleMeta::from_reader(std::io::Cursor::new(&bytes[..cut]), cut as u64).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn malformed_bytes_error_cleanly() {
        let bundle = ModelBundle::single(tiny(9, None)).unwrap();
        let bytes = bundle.to_bytes();
        assert!(ModelBundle::from_bytes(b"????").is_err());
        let mut wrong = bytes.clone();
        wrong[4] = 9; // version
        assert!(matches!(
            ModelBundle::from_bytes(&wrong).unwrap_err(),
            BundleError::Model(ModelIoError::UnsupportedVersion(_))
        ));
        for cut in [0, 5, 9, 13, bytes.len() / 2, bytes.len() - 1] {
            assert!(ModelBundle::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage (e.g. two bundles concatenated) is file damage.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 3]);
        assert!(matches!(
            ModelBundle::from_bytes(&padded).unwrap_err(),
            BundleError::Model(ModelIoError::Corrupt(detail)) if detail.contains("trailing")
        ));
    }
}
