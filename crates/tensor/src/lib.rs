//! `nasflat-tensor`: a minimal tape-based autograd engine.
//!
//! This crate is the training substrate for the NASFLAT reproduction — a
//! from-scratch replacement for the PyTorch stack the paper uses. It provides:
//!
//! - [`Tensor`]: a dense row-major `f32` matrix whose hot loops run on the
//!   cache-blocked, 8-wide unrolled [`kernels`] (bit-identical to the scalar
//!   reference loops — see the module docs for the exactness contract);
//! - [`Graph`]/[`Var`]: a reverse-mode autodiff tape whose op set covers GNN
//!   predictors (matmul, masked softmax for graph attention, LayerNorm,
//!   embedding gather, broadcasts, reductions); [`Graph::clear`] resets the
//!   tape while retaining its node and buffer arenas, so one tape can be
//!   reused across thousands of forward passes without reallocating;
//! - [`batched`]: multi-query stacking helpers — [`batched::BlockLayout`],
//!   [`batched::block_diag`], [`batched::stack_rows`], and the graph ops
//!   [`Graph::concat_rows`] / [`Graph::block_mean_rows`] — that let B
//!   queries share one tape as block-diagonal tiles while staying
//!   bit-identical to B separate passes (the kernels' exact-`0.0` skip plus
//!   fixed accumulation order make out-of-block zeros true no-ops);
//! - [`ParamStore`]/[`AdamConfig`]: parameter storage with AdamW, SGD,
//!   gradient clipping, and snapshot/restore for meta-learning baselines;
//! - layers ([`Linear`], [`Mlp`], [`Embedding`], [`LayerNorm`]) and losses
//!   ([`mse_loss`], [`pairwise_hinge_loss`]).
//!
//! # Example
//! ```
//! use nasflat_tensor::{Graph, ParamStore, AdamConfig, Tensor};
//!
//! // Fit w to minimize (w*2 - 6)^2  =>  w -> 3.
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::scalar(0.0));
//! let cfg = AdamConfig::default().with_lr(0.1);
//! for _ in 0..200 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let wv = g.param(&store, w);
//!     let two = g.constant(Tensor::scalar(2.0));
//!     let six = g.constant(Tensor::scalar(6.0));
//!     let y = g.mul(wv, two);
//!     let d = g.sub(y, six);
//!     let loss = g.mul(d, d);
//!     g.backward(loss);
//!     g.write_grads(&mut store);
//!     store.adam_step(&cfg);
//! }
//! assert!((store.value(w).item() - 3.0).abs() < 0.1);
//! ```

#![warn(missing_docs)]

pub mod batched;
mod graph;
pub mod kernels;
mod layers;
mod loss;
mod params;
mod serialize;
mod tensor;

pub use graph::{Graph, Var};
pub use layers::{Activation, Embedding, LayerNorm, Linear, Mlp};
pub use loss::{mse_loss, mse_loss_stacked, pairwise_hinge_loss, pairwise_hinge_loss_stacked};
pub use params::{AdamConfig, ParamId, ParamStore};
pub use serialize::{ByteReader, ByteWriter, LoadError, StreamError, StreamReader, WireError};
pub use tensor::Tensor;
