//! `nasflat-hw`: synthetic hardware devices and the latency simulator.
//!
//! The paper's experiments run on measured latency tables (HW-NAS-Bench,
//! EAGLE, HELP) covering ~40 devices across 10 hardware categories. Those
//! tables are not redistributable here, so this crate provides a
//! **parametric device simulator** calibrated to reproduce the property the
//! paper's method actually depends on: the *cross-device rank-correlation
//! structure* (paper Tables 21–23). See DESIGN.md §2 for the substitution
//! argument.
//!
//! - [`DeviceRegistry`] mirrors the paper's device roster by name
//!   (`1080ti_1`, `eyeriss`, `edge_tpu_int8`, …).
//! - [`latency_ms`] deterministically maps (device, architecture) to a
//!   latency in milliseconds, including seeded measurement noise.
//! - [`LatencyTable`] precomputes the device × architecture matrix, the
//!   in-memory analogue of the HW-NAS-Bench dataset files.

#![warn(missing_docs)]

mod device;
mod energy;
mod rng;
mod sim;

pub use device::{Device, DeviceClass, DeviceRegistry, Precision, Profile};
pub use energy::{energy_clean_mj, energy_mj, measure_energy_all};
pub use rng::{combine, fnv1a, lognormal_jitter, splitmix64, unit_normal, unit_uniform};
pub use sim::{latency_clean_ms, latency_ms, measure_all, LatencyTable};
