//! Zero-cost-proxy (ZCP) encodings.
//!
//! The paper uses 13 zero-cost proxies (a NAS-Bench-Suite-Zero subset) as a
//! vector encoding of each architecture. The original proxies require a
//! forward/backward pass through the instantiated network; here each proxy is
//! replaced by an *analytic surrogate* computed from the architecture DAG and
//! its cost profile (see DESIGN.md §2). What matters for the paper's use of
//! ZCP — sampling diverse architectures and supplementing the predictor — is
//! that the vector separates architectures along many independent axes, which
//! these surrogates preserve.

use nasflat_space::{Arch, OpKind};

/// Names of the 13 proxies, index-aligned with [`zcp_features`].
pub const ZCP_NAMES: [&str; ZCP_DIM] = [
    "log_flops",
    "log_params",
    "log_mem",
    "depth",
    "width",
    "edge_density",
    "op_entropy",
    "conv_flops_share",
    "skip_fraction",
    "pool_fraction",
    "arith_intensity",
    "synflow_surrogate",
    "zen_surrogate",
];

/// Dimensionality of the ZCP vector.
pub const ZCP_DIM: usize = 13;

/// Computes the 13-dimensional zero-cost-proxy vector for an architecture.
///
/// All components are finite for every valid architecture (including the
/// all-`none` NB201 cell) and deterministic.
///
/// # Examples
/// ```
/// use nasflat_space::{Arch, Space};
/// let v = nasflat_encode::zcp_features(&Arch::nb201_from_index(777));
/// assert_eq!(v.len(), nasflat_encode::ZCP_DIM);
/// assert!(v.iter().all(|x| x.is_finite()));
/// ```
pub fn zcp_features(arch: &Arch) -> Vec<f32> {
    let graph = arch.to_graph();
    let profile = arch.cost_profile();
    let space = arch.space();
    let n = graph.num_nodes();

    let mut conv_flops = 0.0f64;
    let mut skip_count = 0usize;
    let mut pool_count = 0usize;
    let mut none_count = 0usize;
    let mut real_ops = 0usize;
    let mut hist = vec![0usize; space.vocab_size()];
    for i in 0..n {
        let vid = graph.ops()[i];
        hist[vid] += 1;
        let desc = space.op_desc(vid);
        match desc.kind {
            OpKind::Conv | OpKind::Block => {
                conv_flops += profile.node_costs[i].flops;
                real_ops += 1;
            }
            OpKind::Skip => {
                skip_count += 1;
                real_ops += 1;
            }
            OpKind::Pool => {
                pool_count += 1;
                real_ops += 1;
            }
            OpKind::None => none_count += 1,
            OpKind::Input | OpKind::Output => {}
        }
    }
    let slots = (real_ops + none_count).max(1) as f32;

    // Shannon entropy of the op histogram over real op slots.
    let total: usize = hist.iter().skip(2).sum();
    let mut entropy = 0.0f32;
    if total > 0 {
        for &h in hist.iter().skip(2) {
            if h > 0 {
                let p = h as f32 / total as f32;
                entropy -= p * p.ln();
            }
        }
    }

    // Synflow surrogate: path-sensitive compute mass. The real synflow is the
    // product of parameter magnitudes along all paths; the analytic stand-in
    // sums log-compute weighted by each node's fan-out (path multiplicity).
    let mut synflow = 0.0f64;
    for i in 0..n {
        let fanout = graph.succs(i).len().max(1) as f64;
        synflow += (1.0 + profile.node_costs[i].flops).ln() * fanout;
    }

    // Zen surrogate: expressivity score favoring deep, wide, high-compute
    // networks (Zen-NAS scores scale with log Gaussian-perturbation response,
    // which grows with depth x log-width).
    let depth = graph.longest_path() as f32;
    let width = graph.max_width() as f32;
    let zen = depth * (1.0 + profile.total_params as f32).ln().max(1.0).ln();

    let flops = profile.total_flops;
    let mem = profile.total_mem;
    vec![
        (1.0 + flops).ln() as f32,
        (1.0 + profile.total_params).ln() as f32,
        (1.0 + mem).ln() as f32,
        depth,
        width,
        graph.num_edges() as f32 / (n * (n - 1) / 2).max(1) as f32,
        entropy,
        if flops > 0.0 {
            (conv_flops / flops) as f32
        } else {
            0.0
        },
        skip_count as f32 / slots,
        pool_count as f32 / slots,
        (flops / (1.0 + mem)) as f32,
        synflow as f32,
        zen,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasflat_space::Space;

    #[test]
    fn dimension_matches_names() {
        let v = zcp_features(&Arch::nb201_from_index(0));
        assert_eq!(v.len(), ZCP_DIM);
        assert_eq!(ZCP_NAMES.len(), ZCP_DIM);
    }

    #[test]
    fn all_none_cell_is_finite_and_zero_compute() {
        let v = zcp_features(&Arch::new(Space::Nb201, vec![0; 6]));
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(v[0], 0.0); // log_flops
        assert_eq!(v[7], 0.0); // conv share
    }

    #[test]
    fn conv_heavy_cell_scores_higher_compute() {
        let conv = zcp_features(&Arch::new(Space::Nb201, vec![3; 6]));
        let skip = zcp_features(&Arch::new(Space::Nb201, vec![1; 6]));
        assert!(conv[0] > skip[0], "log_flops should rank conv over skip");
        assert!(conv[7] > skip[7]);
        assert!(skip[8] > conv[8], "skip fraction");
    }

    #[test]
    fn entropy_zero_for_uniform_ops() {
        let v = zcp_features(&Arch::new(Space::Nb201, vec![3; 6]));
        assert_eq!(v[6], 0.0);
        let mixed = zcp_features(&Arch::new(Space::Nb201, vec![0, 1, 2, 3, 4, 3]));
        assert!(mixed[6] > 0.5);
    }

    #[test]
    fn fbnet_features_work() {
        let v = zcp_features(&Arch::new(Space::Fbnet, vec![3; 22]));
        assert_eq!(v.len(), ZCP_DIM);
        assert!(v[0] > 0.0);
        assert_eq!(v[3], 23.0); // chain depth
    }

    #[test]
    fn distinct_archs_get_distinct_vectors() {
        let a = zcp_features(&Arch::nb201_from_index(100));
        let b = zcp_features(&Arch::nb201_from_index(200));
        assert_ne!(a, b);
    }
}
