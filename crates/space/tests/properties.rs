//! Property-based tests on the search-space substrate: genotype/graph
//! round-trips, DAG invariants, and cost-model monotonicity.

use proptest::prelude::*;

use nasflat_space::{Arch, Space, NB201_NUM_ARCHS};

fn nb201_genotype() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 6)
}

fn fbnet_genotype() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..9, 22)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn nb201_index_round_trip(idx in 0u64..NB201_NUM_ARCHS) {
        let a = Arch::nb201_from_index(idx);
        prop_assert_eq!(a.nb201_index(), idx);
        prop_assert_eq!(a.genotype().len(), 6);
    }

    #[test]
    fn nb201_graph_invariants(geno in nb201_genotype()) {
        let a = Arch::new(Space::Nb201, geno);
        let g = a.to_graph();
        prop_assert_eq!(g.num_nodes(), 8);
        // INPUT first, OUTPUT last
        prop_assert_eq!(g.ops()[0], 0);
        prop_assert_eq!(g.ops()[7], 1);
        // all edges forward; INPUT has no preds, OUTPUT no succs
        prop_assert!(g.preds(0).is_empty());
        prop_assert!(g.succs(7).is_empty());
        prop_assert!(g.longest_path() <= 7);
        // line-graph structure of the fixed cell: always the same adjacency
        // (INPUT feeds 3 edge-nodes, 3 edge-nodes feed OUTPUT, and the six
        // cell edges induce 4 edge-to-edge links: 10 total)
        prop_assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn fbnet_graph_is_a_chain(geno in fbnet_genotype()) {
        let a = Arch::new(Space::Fbnet, geno);
        let g = a.to_graph();
        prop_assert_eq!(g.num_nodes(), 24);
        prop_assert_eq!(g.num_edges(), 23);
        prop_assert_eq!(g.longest_path(), 23);
        for i in 1..23 {
            prop_assert_eq!(g.preds(i), vec![i - 1]);
        }
    }

    #[test]
    fn cost_profile_totals_are_sums(geno in nb201_genotype()) {
        let a = Arch::new(Space::Nb201, geno);
        let p = a.cost_profile();
        let sum_flops: f64 = p.node_costs.iter().map(|c| c.flops).sum();
        let sum_params: f64 = p.node_costs.iter().map(|c| c.params).sum();
        prop_assert!((p.total_flops - sum_flops).abs() < 1e-6);
        prop_assert!((p.total_params - sum_params).abs() < 1e-6);
        prop_assert!(p.node_costs.iter().all(|c| c.flops >= 0.0 && c.params >= 0.0 && c.mem >= 0.0));
    }

    #[test]
    fn upgrading_none_to_conv_increases_cost(geno in nb201_genotype(), slot in 0usize..6) {
        let mut lo = geno.clone();
        lo[slot] = 0; // none
        let mut hi = geno;
        hi[slot] = 3; // conv3x3
        let a = Arch::new(Space::Nb201, lo).cost_profile();
        let b = Arch::new(Space::Nb201, hi).cost_profile();
        prop_assert!(b.total_flops > a.total_flops);
        prop_assert!(b.total_params > a.total_params);
    }

    #[test]
    fn adjop_encoding_shape_and_onehot(geno in nb201_genotype()) {
        let a = Arch::new(Space::Nb201, geno);
        let enc = a.adjop_encoding();
        let n = 8;
        let vocab = Space::Nb201.vocab_size();
        prop_assert_eq!(enc.len(), n * n + n * vocab);
        // each one-hot block sums to exactly 1
        for node in 0..n {
            let block = &enc[n * n + node * vocab..n * n + (node + 1) * vocab];
            let s: f32 = block.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-6);
            prop_assert!(block.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn propagation_matrix_rows_have_self_loops(geno in fbnet_genotype()) {
        let a = Arch::new(Space::Fbnet, geno);
        let g = a.to_graph();
        let n = g.num_nodes();
        let p = g.propagation_matrix();
        for i in 0..n {
            prop_assert_eq!(p[i * n + i], 1.0);
            // row i marks predecessors of i
            for j in 0..n {
                if i != j {
                    prop_assert_eq!(p[i * n + j] != 0.0, g.adj(j, i) != 0.0);
                }
            }
        }
    }

    #[test]
    fn op_desc_covers_whole_vocab(space_id in 0usize..2) {
        let space = if space_id == 0 { Space::Nb201 } else { Space::Fbnet };
        for vid in 0..space.vocab_size() {
            let d = space.op_desc(vid);
            prop_assert!(d.groups >= 1);
            prop_assert!((0.0..=1.0).contains(&d.dw_fraction));
        }
    }
}
