//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a reusable tape: ops append nodes, [`Graph::backward`]
//! walks the tape in reverse accumulating gradients, and [`Graph::clear`]
//! resets it for the next forward pass while **retaining its arenas** — the
//! node vector's capacity and every node's `f32` buffer go back into a free
//! pool that subsequent passes draw from, so steady-state forward passes
//! allocate nothing. Parameters live outside the graph in a
//! [`ParamStore`](crate::ParamStore) and are inserted as leaves that remember
//! their [`ParamId`](crate::ParamId) so gradients can be written back.
//!
//! The op set is exactly what the NASFLAT predictor needs: matrix products,
//! element-wise arithmetic and activations, adjacency-masked softmax (for
//! graph attention), LayerNorm, row gather/scatter (embedding lookup), a
//! few reductions, and the multi-query block ops ([`Graph::block_matmul`],
//! [`Graph::block_matmul_nt`], [`Graph::block_diag_matmul`],
//! [`Graph::block_mean_rows`], [`Graph::concat_rows`]) that evaluate B
//! stacked queries per tape node. All dense inner loops run on the unrolled
//! [`kernels`](crate::kernels); `MatMul` backward uses the transposed fast
//! paths (`A·Bᵀ`, `Aᵀ·B`) instead of materializing `transpose()` copies.
//!
//! Gradient buffers are **lazy**: nodes are pushed without them and
//! [`Graph::backward`] materializes the tape prefix's gradients (pooled,
//! zero-filled) before walking, so forward-only passes — batched prediction
//! sweeps — never allocate or zero a single gradient buffer.

use crate::kernels;
use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
#[allow(dead_code)] // scalar operands are kept for informative Debug output
enum Op {
    Leaf,
    MatMul(Var, Var),
    BlockDiagMatMul(Var, Vec<Tensor>),
    BlockMatMul(Var, Var, usize),
    BlockMatMulNt(Var, Var, usize),
    Add(Var, Var),
    Sub(Var, Var),
    MulElem(Var, Var),
    AddRowBroadcast(Var, Var),
    MulRowBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var, f32),
    Sigmoid(Var),
    Tanh(Var),
    Relu(Var),
    LeakyRelu(Var, f32),
    SoftmaxRowsMasked(Var, Option<Tensor>),
    LayerNormRows { x: Var, gamma: Var, beta: Var },
    ConcatCols(Var, Var),
    ConcatRows(Vec<Var>),
    SliceRows(Var, usize, usize),
    BlockMeanRows(Var, Vec<usize>),
    Transpose(Var),
    Gather(Var, Vec<usize>),
    RepeatRow(Var, usize),
    MeanRows(Var),
    SumAll(Var),
    SumVars(Vec<Var>),
}

struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
    requires_grad: bool,
    param: Option<ParamId>,
    /// Saved intermediates needed by backward (e.g. LayerNorm's normalized
    /// input and inverse std).
    aux: Vec<Tensor>,
}

/// A reverse-mode autodiff tape with a reusable buffer arena.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    /// Recycled `f32` buffers from cleared passes; [`Graph::clear`] refills
    /// it, the private allocators below drain it.
    free: Vec<Vec<f32>>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(256),
            free: Vec::new(),
        }
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resets the tape for the next forward pass while retaining capacity:
    /// the node vector keeps its allocation and every node's value, gradient,
    /// aux, and mask buffer is recycled into the arena, so a cleared graph
    /// re-runs a same-shaped forward pass with (at most) a bounded handful
    /// of fresh allocations — pooled ops, gradients, and parameter leaves
    /// all draw from the arena.
    ///
    /// The arena is capped relative to the pass that was just cleared: a
    /// pass also *donates* buffers it allocated outside the pool (constants
    /// such as propagation matrices, attention-mask clones), and without a
    /// cap those would accumulate across thousands of session queries.
    /// Surplus buffers are dropped here instead.
    ///
    /// A cleared graph is indistinguishable from a fresh one — recycled
    /// buffers are re-zeroed on reuse, so outputs are bit-identical to
    /// building each pass on `Graph::new()`.
    pub fn clear(&mut self) {
        let nodes = self.nodes.len();
        for node in self.nodes.drain(..) {
            self.free.push(node.value.into_vec());
            let grad = node.grad.into_vec();
            if !grad.is_empty() {
                self.free.push(grad);
            }
            for aux in node.aux {
                self.free.push(aux.into_vec());
            }
            match node.op {
                Op::SoftmaxRowsMasked(_, Some(mask)) => self.free.push(mask.into_vec()),
                Op::BlockDiagMatMul(_, blocks) => {
                    for b in blocks {
                        self.free.push(b.into_vec());
                    }
                }
                _ => {}
            }
        }
        // One pass pops at most value + grad + aux buffers per node
        // (< 4 per node); anything beyond that bound can never be reused.
        self.free.truncate(4 * nodes + 16);
    }

    /// A zero-filled buffer of `len`, recycled from the arena when possible.
    fn take_buf(&mut self, len: usize) -> Vec<f32> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// A pooled zeros tensor.
    fn zeros(&mut self, rows: usize, cols: usize) -> Tensor {
        let buf = self.take_buf(rows * cols);
        Tensor::from_vec(rows, cols, buf)
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.push_aux(value, op, requires_grad, Vec::new())
    }

    fn push_aux(&mut self, value: Tensor, op: Op, requires_grad: bool, aux: Vec<Tensor>) -> Var {
        // Gradient buffers are *lazy*: forward-only passes (batched
        // prediction sweeps) never pay for allocating or zeroing them —
        // `backward` materializes every tape-prefix gradient before walking.
        self.nodes.push(Node {
            value,
            grad: Tensor::zeros(0, 0),
            op,
            requires_grad,
            param: None,
            aux,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Inserts a constant (no gradient will flow into it).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// Inserts a leaf that participates in gradients but is not a stored
    /// parameter (used by tests and finite-difference checks).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// Inserts a parameter from `store`, remembering its id for
    /// [`Graph::write_grads`]. The on-tape copy uses a pooled buffer.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let src = store.value(id);
        let (rows, cols) = src.shape();
        let mut buf = match self.free.pop() {
            Some(mut b) => {
                b.clear();
                b
            }
            None => Vec::with_capacity(rows * cols),
        };
        buf.extend_from_slice(src.data());
        let v = self.push(Tensor::from_vec(rows, cols, buf), Op::Leaf, true);
        self.nodes[v.0].param = Some(id);
        v
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Gradient of a node. Gradient storage is materialized by
    /// [`Graph::backward`] for gradient-requiring nodes; before it runs —
    /// or for constants and nodes pushed after the backward root — this is
    /// an empty `0×0` tensor.
    pub fn grad(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].grad
    }

    // ---- ops -------------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (m, ka) = self.nodes[a.0].value.shape();
        let (kb, n) = self.nodes[b.0].value.shape();
        assert_eq!(
            ka,
            kb,
            "matmul shape mismatch: {:?} x {:?}",
            (m, ka),
            (kb, n)
        );
        let mut v = self.zeros(m, n);
        kernels::matmul(
            m,
            ka,
            n,
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            v.data_mut(),
        );
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), rg)
    }

    /// Block-diagonal structured product: with square constant blocks
    /// `P_0 … P_{B-1}` (sizes `n_b`) and `x` of `Σn_b` rows, computes
    /// `blockdiag(P_0, …) · x` without materializing the dense
    /// block-diagonal operand — block `b` of the output is
    /// `P_b · x[offset(b)..offset(b)+n_b]` via the same [`kernels::matmul`]
    /// call a lone `n_b`-row pass would make, so the result is
    /// **bit-identical** both to the dense block-diagonal product (whose
    /// exact-`0.0` off-block entries the kernel skips) and to B separate
    /// per-block [`Graph::matmul`]s. Cost is `Σ n_b²·c` instead of the
    /// dense `(Σn_b)²·c` zero-scan, so stacking more queries stays linear
    /// in B. The blocks are constants (no gradient flows into them);
    /// backward propagates `P_bᵀ·g_b` into `x` per block.
    ///
    /// # Panics
    /// Panics if `blocks` is empty, a block is not square, or the sizes do
    /// not sum to `x`'s row count.
    pub fn block_diag_matmul(&mut self, blocks: &[Tensor], x: Var) -> Var {
        assert!(!blocks.is_empty(), "block_diag_matmul needs blocks");
        let (r, c) = self.nodes[x.0].value.shape();
        let total: usize = blocks
            .iter()
            .map(|b| {
                assert_eq!(
                    b.rows(),
                    b.cols(),
                    "block_diag_matmul blocks must be square"
                );
                b.rows()
            })
            .sum();
        assert_eq!(total, r, "block sizes must sum to x's row count");
        let mut v = self.zeros(r, c);
        {
            let tx = &self.nodes[x.0].value;
            let mut off = 0usize;
            for b in blocks {
                let n = b.rows();
                kernels::matmul(
                    n,
                    n,
                    c,
                    b.data(),
                    &tx.data()[off * c..(off + n) * c],
                    &mut v.data_mut()[off * c..(off + n) * c],
                );
                off += n;
            }
        }
        let rg = self.rg(x);
        self.push(v, Op::BlockDiagMatMul(x, blocks.to_vec()), rg)
    }

    /// Per-block matrix product over **equal-size** stacked blocks: `a`
    /// holds B square `block×block` matrices stacked vertically
    /// (`B·block × block`), `b` holds B feature blocks (`B·block × c`), and
    /// output block `i` is `a_i · b_i`. The multi-query form of B separate
    /// [`Graph::matmul`]s — each block runs the identical kernel call, so
    /// results are bit-identical to the per-query passes (and to the dense
    /// block-diagonal product), at `Σ block²·c` cost and **one** tape node.
    ///
    /// # Panics
    /// Panics if `block` is 0, `a` is not `B·block × block`, or `b` has a
    /// different row count.
    pub fn block_matmul(&mut self, a: Var, b: Var, block: usize) -> Var {
        let (ra, ca) = self.nodes[a.0].value.shape();
        let (rb, cb) = self.nodes[b.0].value.shape();
        assert!(block > 0, "block_matmul needs a positive block size");
        assert!(
            ca == block && ra % block == 0,
            "block_matmul lhs must be stacked {block}x{block} blocks"
        );
        assert_eq!(ra, rb, "block_matmul row mismatch");
        let mut v = self.zeros(ra, cb);
        {
            let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for blk in 0..ra / block {
                let off = blk * block;
                kernels::matmul(
                    block,
                    block,
                    cb,
                    &ta.data()[off * block..(off + block) * block],
                    &tb.data()[off * cb..(off + block) * cb],
                    &mut v.data_mut()[off * cb..(off + block) * cb],
                );
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::BlockMatMul(a, b, block), rg)
    }

    /// Per-block transposed product over equal-size stacked blocks: `a` and
    /// `b` both hold B `block×k` blocks stacked vertically, and output
    /// block `i` is `a_i · b_iᵀ` (`B·block × block`) — the multi-query form
    /// of the attention-logit product `matmul(a, transpose(b))`. Each block
    /// materializes `b_iᵀ` into a pooled scratch buffer and runs the same
    /// [`kernels::matmul`] call the per-query pass would, so results are
    /// bit-identical, and the B passes cost **one** tape node.
    ///
    /// # Panics
    /// Panics if `block` is 0, shapes differ, or the row count is not a
    /// multiple of `block`.
    pub fn block_matmul_nt(&mut self, a: Var, b: Var, block: usize) -> Var {
        let (ra, k) = self.nodes[a.0].value.shape();
        assert!(block > 0, "block_matmul_nt needs a positive block size");
        assert_eq!(
            self.nodes[b.0].value.shape(),
            (ra, k),
            "block_matmul_nt shape mismatch"
        );
        assert_eq!(ra % block, 0, "rows must be a multiple of the block size");
        let mut scratch = self.take_buf(k * block);
        let mut v = self.zeros(ra, block);
        {
            let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for blk in 0..ra / block {
                let off = blk * block;
                // b_iᵀ, laid out exactly like the per-query transpose node.
                for i in 0..block {
                    for j in 0..k {
                        scratch[j * block + i] = tb.get(off + i, j);
                    }
                }
                kernels::matmul(
                    block,
                    k,
                    block,
                    &ta.data()[off * k..(off + block) * k],
                    &scratch,
                    &mut v.data_mut()[off * block..(off + block) * block],
                );
            }
        }
        self.free.push(scratch);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::BlockMatMulNt(a, b, block), rg)
    }

    /// Element-wise sum. Shapes must match.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        assert_eq!(sa, sb, "add shape mismatch");
        let mut v = self.zeros(sa.0, sa.1);
        kernels::add(
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            v.data_mut(),
        );
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Element-wise difference `a - b`. Shapes must match.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        assert_eq!(sa, sb, "sub shape mismatch");
        let mut v = self.zeros(sa.0, sa.1);
        kernels::sub(
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            v.data_mut(),
        );
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Hadamard (element-wise) product. Shapes must match.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (sa, sb) = (self.nodes[a.0].value.shape(), self.nodes[b.0].value.shape());
        assert_eq!(sa, sb, "mul shape mismatch");
        let mut v = self.zeros(sa.0, sa.1);
        kernels::mul(
            self.nodes[a.0].value.data(),
            self.nodes[b.0].value.data(),
            v.data_mut(),
        );
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MulElem(a, b), rg)
    }

    /// Adds a `1×c` row vector to every row of an `r×c` matrix.
    pub fn add_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        {
            let tb = &self.nodes[b.0].value;
            assert_eq!(tb.rows(), 1, "broadcast rhs must be a row vector");
            assert_eq!(c, tb.cols(), "broadcast col mismatch");
        }
        let mut v = self.zeros(r, c);
        {
            let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for i in 0..r {
                kernels::add(ta.row(i), tb.row(0), v.row_mut(i));
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::AddRowBroadcast(a, b), rg)
    }

    /// Multiplies every row of an `r×c` matrix by a `1×c` row vector.
    pub fn mul_row_broadcast(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        {
            let tb = &self.nodes[b.0].value;
            assert_eq!(tb.rows(), 1, "broadcast rhs must be a row vector");
            assert_eq!(c, tb.cols(), "broadcast col mismatch");
        }
        let mut v = self.zeros(r, c);
        {
            let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for i in 0..r {
                kernels::mul(ta.row(i), tb.row(0), v.row_mut(i));
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MulRowBroadcast(a, b), rg)
    }

    /// Scalar multiple `s * a`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::scale(s, self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg)
    }

    /// Adds a scalar constant to every element.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::add_scalar(s, self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a, s), rg)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::sigmoid(self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::Sigmoid(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::tanh(self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::relu(self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(r, c);
        kernels::leaky_relu(slope, self.nodes[a.0].value.data(), v.data_mut());
        let rg = self.rg(a);
        self.push(v, Op::LeakyRelu(a, slope), rg)
    }

    /// Row-wise softmax. With `mask`, entries where `mask == 0` receive zero
    /// probability; an all-masked row becomes all zeros (no NaNs).
    pub fn softmax_rows_masked(&mut self, a: Var, mask: Option<Tensor>) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        if let Some(m) = &mask {
            assert_eq!(m.shape(), (r, c), "softmax mask shape mismatch");
        }
        let mut v = self.zeros(r, c);
        {
            let ta = &self.nodes[a.0].value;
            for row in 0..r {
                let allowed = |col: usize| mask.as_ref().is_none_or(|m| m.get(row, col) != 0.0);
                let mut maxv = f32::NEG_INFINITY;
                for col in 0..c {
                    if allowed(col) {
                        maxv = maxv.max(ta.get(row, col));
                    }
                }
                if !maxv.is_finite() {
                    continue; // fully masked row stays zero
                }
                let mut sum = 0.0;
                for col in 0..c {
                    if allowed(col) {
                        let e = (ta.get(row, col) - maxv).exp();
                        v.set(row, col, e);
                        sum += e;
                    }
                }
                if sum > 0.0 {
                    for col in 0..c {
                        v.set(row, col, v.get(row, col) / sum);
                    }
                }
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::SoftmaxRowsMasked(a, mask), rg)
    }

    /// Row-wise LayerNorm with per-column affine parameters
    /// (`gamma`, `beta` are `1×c`).
    pub fn layer_norm_rows(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        const EPS: f32 = 1e-5;
        let (r, c) = self.nodes[x.0].value.shape();
        assert_eq!(
            self.nodes[gamma.0].value.shape(),
            (1, c),
            "gamma must be 1xC"
        );
        assert_eq!(self.nodes[beta.0].value.shape(), (1, c), "beta must be 1xC");
        let mut xhat = self.zeros(r, c);
        let mut inv_std = self.zeros(r, 1);
        let mut out = self.zeros(r, c);
        {
            let tx = &self.nodes[x.0].value;
            let tg = &self.nodes[gamma.0].value;
            let tb = &self.nodes[beta.0].value;
            for i in 0..r {
                let row = tx.row(i);
                let mu = row.iter().sum::<f32>() / c as f32;
                let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / c as f32;
                let is = 1.0 / (var + EPS).sqrt();
                inv_std.set(i, 0, is);
                for (j, &rv) in row.iter().enumerate() {
                    let xh = (rv - mu) * is;
                    xhat.set(i, j, xh);
                    out.set(i, j, xh * tg.get(0, j) + tb.get(0, j));
                }
            }
        }
        let rg = self.rg(x) || self.rg(gamma) || self.rg(beta);
        self.push_aux(
            out,
            Op::LayerNormRows { x, gamma, beta },
            rg,
            vec![xhat, inv_std],
        )
    }

    /// Horizontal concatenation `[a | b]`. Row counts must match.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (r, ca) = self.nodes[a.0].value.shape();
        let (rb, cb) = self.nodes[b.0].value.shape();
        assert_eq!(r, rb, "concat_cols row mismatch");
        let mut v = self.zeros(r, ca + cb);
        {
            let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
            for i in 0..r {
                v.row_mut(i)[..ca].copy_from_slice(ta.row(i));
                v.row_mut(i)[ca..].copy_from_slice(tb.row(i));
            }
        }
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatCols(a, b), rg)
    }

    /// Vertical concatenation `[a0; a1; …]` (multi-query stacking). Column
    /// counts must match; gradients slice back to each input.
    ///
    /// # Panics
    /// Panics if `vars` is empty or column counts differ.
    pub fn concat_rows(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_rows on empty list");
        let c = self.nodes[vars[0].0].value.cols();
        let mut rows = 0usize;
        let mut rg = false;
        for &x in vars {
            assert_eq!(self.nodes[x.0].value.cols(), c, "concat_rows col mismatch");
            rows += self.nodes[x.0].value.rows();
            rg |= self.rg(x);
        }
        let mut v = self.zeros(rows, c);
        let mut off = 0usize;
        for &x in vars {
            let tx = &self.nodes[x.0].value;
            for i in 0..tx.rows() {
                v.row_mut(off + i).copy_from_slice(tx.row(i));
            }
            off += tx.rows();
        }
        self.push(v, Op::ConcatRows(vars.to_vec()), rg)
    }

    /// Contiguous row slice `a[start .. start+len]`.
    pub fn slice_rows(&mut self, a: Var, start: usize, len: usize) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        assert!(start + len <= r, "slice_rows out of range");
        let mut v = self.zeros(len, c);
        {
            let ta = &self.nodes[a.0].value;
            for i in 0..len {
                v.row_mut(i).copy_from_slice(ta.row(start + i));
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::SliceRows(a, start, len), rg)
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(c, r);
        {
            let ta = &self.nodes[a.0].value;
            for i in 0..r {
                for j in 0..c {
                    v.set(j, i, ta.get(i, j));
                }
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::Transpose(a), rg)
    }

    /// Row gather: output row `i` is input row `indices[i]` (embedding
    /// lookup). Indices may repeat; backward scatter-adds.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Var {
        let (rows, c) = self.nodes[a.0].value.shape();
        let mut v = self.zeros(indices.len(), c);
        {
            let ta = &self.nodes[a.0].value;
            for (i, &ix) in indices.iter().enumerate() {
                assert!(ix < rows, "gather index {ix} out of range ({rows} rows)");
                v.row_mut(i).copy_from_slice(ta.row(ix));
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::Gather(a, indices.to_vec()), rg)
    }

    /// Tiles a `1×c` row vector into an `n×c` matrix.
    pub fn repeat_row(&mut self, a: Var, n: usize) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        assert_eq!(r, 1, "repeat_row needs a row vector");
        let mut v = self.zeros(n, c);
        {
            let ta = &self.nodes[a.0].value;
            for i in 0..n {
                v.row_mut(i).copy_from_slice(ta.row(0));
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::RepeatRow(a, n), rg)
    }

    /// Mean over rows: `r×c → 1×c`.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        assert!(r > 0, "mean_rows on empty matrix");
        let mut v = self.zeros(1, c);
        {
            let ta = &self.nodes[a.0].value;
            for i in 0..r {
                for j in 0..c {
                    v.set(0, j, v.get(0, j) + ta.get(i, j) / r as f32);
                }
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::MeanRows(a), rg)
    }

    /// Per-block row means over consecutive row blocks: with `sizes =
    /// [n_0, …, n_{B-1}]` (summing to `a`'s row count), output row `b` is
    /// the mean of `a`'s rows `[offset(b), offset(b)+n_b)` — `Σn_b×c → B×c`.
    ///
    /// Each block accumulates with exactly the loop order of
    /// [`Graph::mean_rows`] on that block alone, so a stacked multi-query
    /// pass reproduces the per-query readout bit-for-bit.
    ///
    /// # Panics
    /// Panics if `sizes` is empty, contains a zero, or does not sum to the
    /// row count.
    pub fn block_mean_rows(&mut self, a: Var, sizes: &[usize]) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        assert!(
            !sizes.is_empty(),
            "block_mean_rows needs at least one block"
        );
        assert_eq!(
            sizes.iter().sum::<usize>(),
            r,
            "block_mean_rows sizes must sum to the row count"
        );
        let mut v = self.zeros(sizes.len(), c);
        {
            let ta = &self.nodes[a.0].value;
            let mut off = 0usize;
            for (b, &n) in sizes.iter().enumerate() {
                assert!(n > 0, "block_mean_rows zero-row block");
                for i in 0..n {
                    for j in 0..c {
                        v.set(b, j, v.get(b, j) + ta.get(off + i, j) / n as f32);
                    }
                }
                off += n;
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::BlockMeanRows(a, sizes.to_vec()), rg)
    }

    /// Sum of all elements: `r×c → 1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let mut v = self.zeros(1, 1);
        v.set(0, 0, self.nodes[a.0].value.sum());
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg)
    }

    /// Sums several same-shaped vars (used to accumulate per-pair losses).
    ///
    /// # Panics
    /// Panics if `vars` is empty or shapes differ.
    pub fn sum_vars(&mut self, vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "sum_vars on empty list");
        let shape = self.nodes[vars[0].0].value.shape();
        let mut v = self.zeros(shape.0, shape.1);
        let mut rg = false;
        for &x in vars {
            assert_eq!(
                self.nodes[x.0].value.shape(),
                shape,
                "sum_vars shape mismatch"
            );
            v.axpy(1.0, &self.nodes[x.0].value);
            rg |= self.rg(x);
        }
        self.push(v, Op::SumVars(vars.to_vec()), rg)
    }

    // ---- backward ---------------------------------------------------------

    /// Runs reverse-mode differentiation from `root`, which must be `1×1`.
    ///
    /// Gradients accumulate in the tape; call [`Graph::write_grads`] to move
    /// parameter gradients into the store.
    pub fn backward(&mut self, root: Var) {
        assert_eq!(
            self.nodes[root.0].value.shape(),
            (1, 1),
            "backward root must be a scalar"
        );
        // Materialize the lazy gradient buffers for the tape prefix (pooled,
        // zero-filled) — push defers them so forward-only passes skip the
        // allocation and zeroing entirely. Constants stay empty: the walk
        // skips them, accum is requires_grad-guarded, and zeroing the tape's
        // largest buffers (propagation matrices, masks) every training step
        // would be pure waste.
        for i in 0..=root.0 {
            if self.nodes[i].requires_grad && self.nodes[i].grad.is_empty() {
                let (r, c) = self.nodes[i].value.shape();
                let zeros = self.zeros(r, c);
                self.nodes[i].grad = zeros;
            }
        }
        self.nodes[root.0].grad = Tensor::scalar(1.0);
        for i in (0..=root.0).rev() {
            if !self.nodes[i].requires_grad {
                continue;
            }
            if self.nodes[i].grad.data().iter().all(|&g| g == 0.0) {
                continue;
            }
            self.backprop_node(i);
        }
    }

    fn accum(&mut self, v: Var, delta: &Tensor) {
        if self.nodes[v.0].requires_grad {
            self.nodes[v.0].grad.axpy(1.0, delta);
        }
    }

    fn backprop_node(&mut self, i: usize) {
        let g = self.nodes[i].grad.clone();
        // Temporarily take the op out (restored below) instead of deep-cloning
        // it: softmax masks and gather index lists stay in place.
        let op = std::mem::replace(&mut self.nodes[i].op, Op::Leaf);
        match &op {
            Op::Leaf => {}
            Op::BlockDiagMatMul(x, blocks) => {
                let x = *x;
                let (r, c) = g.shape();
                let mut dx = Tensor::zeros(r, c);
                let mut off = 0usize;
                for b in blocks {
                    let n = b.rows();
                    // dX_b = P_bᵀ · g_b — the per-block transposed fast path,
                    // bit-identical to the dense block-diagonal Aᵀ·g.
                    kernels::matmul_tn(
                        n,
                        n,
                        c,
                        b.data(),
                        &g.data()[off * c..(off + n) * c],
                        &mut dx.data_mut()[off * c..(off + n) * c],
                    );
                    off += n;
                }
                self.accum(x, &dx);
            }
            &Op::BlockMatMul(a, b, block) => {
                // Per block: dA_i = g_i·B_iᵀ, dB_i = A_iᵀ·g_i — the same
                // transposed fast paths as `MatMul`, block by block.
                let (da, db) = {
                    let ta = &self.nodes[a.0].value;
                    let tb = &self.nodes[b.0].value;
                    let c = tb.cols();
                    let mut da = Tensor::zeros(ta.rows(), ta.cols());
                    let mut db = Tensor::zeros(tb.rows(), tb.cols());
                    for blk in 0..ta.rows() / block {
                        let off = blk * block;
                        kernels::matmul_nt(
                            block,
                            c,
                            block,
                            &g.data()[off * c..(off + block) * c],
                            &tb.data()[off * c..(off + block) * c],
                            &mut da.data_mut()[off * block..(off + block) * block],
                        );
                        kernels::matmul_tn(
                            block,
                            block,
                            c,
                            &ta.data()[off * block..(off + block) * block],
                            &g.data()[off * c..(off + block) * c],
                            &mut db.data_mut()[off * c..(off + block) * c],
                        );
                    }
                    (da, db)
                };
                self.accum(a, &da);
                self.accum(b, &db);
            }
            &Op::BlockMatMulNt(a, b, block) => {
                // Per block (logits L_i = A_i·B_iᵀ): dA_i = g_i·B_i,
                // dB_i = g_iᵀ·A_i.
                let (da, db) = {
                    let ta = &self.nodes[a.0].value;
                    let tb = &self.nodes[b.0].value;
                    let k = ta.cols();
                    let mut da = Tensor::zeros(ta.rows(), k);
                    let mut db = Tensor::zeros(tb.rows(), k);
                    for blk in 0..ta.rows() / block {
                        let off = blk * block;
                        kernels::matmul(
                            block,
                            block,
                            k,
                            &g.data()[off * block..(off + block) * block],
                            &tb.data()[off * k..(off + block) * k],
                            &mut da.data_mut()[off * k..(off + block) * k],
                        );
                        kernels::matmul_tn(
                            block,
                            block,
                            k,
                            &g.data()[off * block..(off + block) * block],
                            &ta.data()[off * k..(off + block) * k],
                            &mut db.data_mut()[off * k..(off + block) * k],
                        );
                    }
                    (da, db)
                };
                self.accum(a, &da);
                self.accum(b, &db);
            }
            &Op::MatMul(a, b) => {
                // Transposed fast paths: dA = g·Bᵀ, dB = Aᵀ·g — bit-identical
                // to the former transpose()-then-matmul, without the copies.
                let da = g.matmul_nt(&self.nodes[b.0].value);
                let db = self.nodes[a.0].value.matmul_tn(&g);
                self.accum(a, &da);
                self.accum(b, &db);
            }
            &Op::Add(a, b) => {
                self.accum(a, &g);
                self.accum(b, &g);
            }
            &Op::Sub(a, b) => {
                self.accum(a, &g);
                let neg = g.map(|x| -x);
                self.accum(b, &neg);
            }
            &Op::MulElem(a, b) => {
                let da = elem_mul(&g, &self.nodes[b.0].value);
                let db = elem_mul(&g, &self.nodes[a.0].value);
                self.accum(a, &da);
                self.accum(b, &db);
            }
            &Op::AddRowBroadcast(a, b) => {
                self.accum(a, &g);
                let db = col_sums(&g);
                self.accum(b, &db);
            }
            &Op::MulRowBroadcast(a, b) => {
                let (da, db) = {
                    let va = &self.nodes[a.0].value;
                    let vb = &self.nodes[b.0].value;
                    let mut da = g.clone();
                    for r in 0..da.rows() {
                        kernels::mul(g.row(r), vb.row(0), da.row_mut(r));
                    }
                    let mut db = Tensor::zeros(1, vb.cols());
                    for r in 0..g.rows() {
                        for c in 0..g.cols() {
                            db.set(0, c, db.get(0, c) + g.get(r, c) * va.get(r, c));
                        }
                    }
                    (da, db)
                };
                self.accum(a, &da);
                self.accum(b, &db);
            }
            &Op::Scale(a, s) => {
                let da = g.map(|x| x * s);
                self.accum(a, &da);
            }
            &Op::AddScalar(a, _) => self.accum(a, &g),
            &Op::Sigmoid(a) => {
                let mut da = g.clone();
                for (d, &yv) in da.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                    *d *= yv * (1.0 - yv);
                }
                self.accum(a, &da);
            }
            &Op::Tanh(a) => {
                let mut da = g.clone();
                for (d, &yv) in da.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                    *d *= 1.0 - yv * yv;
                }
                self.accum(a, &da);
            }
            &Op::Relu(a) => {
                let mut da = g.clone();
                for (d, &xv) in da.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
                    if xv <= 0.0 {
                        *d = 0.0;
                    }
                }
                self.accum(a, &da);
            }
            &Op::LeakyRelu(a, slope) => {
                let mut da = g.clone();
                for (d, &xv) in da.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
                    if xv <= 0.0 {
                        *d *= slope;
                    }
                }
                self.accum(a, &da);
            }
            Op::SoftmaxRowsMasked(a, _mask) => {
                let a = *a;
                let da = {
                    let y = &self.nodes[i].value;
                    let (r, c) = y.shape();
                    let mut da = Tensor::zeros(r, c);
                    for row in 0..r {
                        let mut dot = 0.0;
                        for col in 0..c {
                            dot += g.get(row, col) * y.get(row, col);
                        }
                        for col in 0..c {
                            let yv = y.get(row, col);
                            da.set(row, col, yv * (g.get(row, col) - dot));
                        }
                    }
                    da
                };
                self.accum(a, &da);
            }
            &Op::LayerNormRows { x, gamma, beta } => {
                let (dgamma, dbeta, dx) = {
                    let xhat = &self.nodes[i].aux[0];
                    let inv_std = &self.nodes[i].aux[1];
                    let tg = &self.nodes[gamma.0].value;
                    let (r, c) = xhat.shape();
                    let mut dgamma = Tensor::zeros(1, c);
                    let mut dbeta = Tensor::zeros(1, c);
                    for row in 0..r {
                        for col in 0..c {
                            dgamma.set(
                                0,
                                col,
                                dgamma.get(0, col) + g.get(row, col) * xhat.get(row, col),
                            );
                            dbeta.set(0, col, dbeta.get(0, col) + g.get(row, col));
                        }
                    }
                    let mut dx = Tensor::zeros(r, c);
                    for row in 0..r {
                        let is = inv_std.get(row, 0);
                        let mut mean_dxhat = 0.0;
                        let mut mean_dxhat_xhat = 0.0;
                        for col in 0..c {
                            let dxh = g.get(row, col) * tg.get(0, col);
                            mean_dxhat += dxh;
                            mean_dxhat_xhat += dxh * xhat.get(row, col);
                        }
                        mean_dxhat /= c as f32;
                        mean_dxhat_xhat /= c as f32;
                        for col in 0..c {
                            let dxh = g.get(row, col) * tg.get(0, col);
                            let v = is * (dxh - mean_dxhat - xhat.get(row, col) * mean_dxhat_xhat);
                            dx.set(row, col, v);
                        }
                    }
                    (dgamma, dbeta, dx)
                };
                self.accum(gamma, &dgamma);
                self.accum(beta, &dbeta);
                self.accum(x, &dx);
            }
            &Op::ConcatCols(a, b) => {
                let ca = self.nodes[a.0].value.cols();
                let cb = self.nodes[b.0].value.cols();
                let r = g.rows();
                let mut da = Tensor::zeros(r, ca);
                let mut db = Tensor::zeros(r, cb);
                for row in 0..r {
                    da.row_mut(row).copy_from_slice(&g.row(row)[..ca]);
                    db.row_mut(row).copy_from_slice(&g.row(row)[ca..]);
                }
                self.accum(a, &da);
                self.accum(b, &db);
            }
            Op::ConcatRows(vars) => {
                let mut off = 0usize;
                for &v in vars {
                    let (r, c) = self.nodes[v.0].value.shape();
                    let mut dv = Tensor::zeros(r, c);
                    for i in 0..r {
                        dv.row_mut(i).copy_from_slice(g.row(off + i));
                    }
                    self.accum(v, &dv);
                    off += r;
                }
            }
            Op::BlockMeanRows(a, sizes) => {
                let a = *a;
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(r, c);
                let mut off = 0usize;
                for (b, &n) in sizes.iter().enumerate() {
                    for i in 0..n {
                        for j in 0..c {
                            da.set(off + i, j, g.get(b, j) / n as f32);
                        }
                    }
                    off += n;
                }
                self.accum(a, &da);
            }
            &Op::SliceRows(a, start, len) => {
                let ta_shape = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(ta_shape.0, ta_shape.1);
                for i2 in 0..len {
                    da.row_mut(start + i2).copy_from_slice(g.row(i2));
                }
                self.accum(a, &da);
            }
            &Op::Transpose(a) => {
                let da = g.transpose();
                self.accum(a, &da);
            }
            Op::Gather(a, indices) => {
                let a = *a;
                let ta_shape = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(ta_shape.0, ta_shape.1);
                for (row, &ix) in indices.iter().enumerate() {
                    kernels::axpy(1.0, g.row(row), da.row_mut(ix));
                }
                self.accum(a, &da);
            }
            &Op::RepeatRow(a, _n) => {
                let da = col_sums(&g);
                self.accum(a, &da);
            }
            &Op::MeanRows(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let mut da = Tensor::zeros(r, c);
                for row in 0..r {
                    for col in 0..c {
                        da.set(row, col, g.get(0, col) / r as f32);
                    }
                }
                self.accum(a, &da);
            }
            &Op::SumAll(a) => {
                let (r, c) = self.nodes[a.0].value.shape();
                let da = Tensor::full(r, c, g.item());
                self.accum(a, &da);
            }
            Op::SumVars(vars) => {
                for &v in vars {
                    self.accum(v, &g);
                }
            }
        }
        self.nodes[i].op = op;
    }

    /// Accumulates gradients of all parameter leaves into the store. Leaves
    /// whose gradient was never materialized (no `backward` reached them)
    /// contribute nothing.
    pub fn write_grads(&self, store: &mut ParamStore) {
        for node in &self.nodes {
            if let Some(pid) = node.param {
                if !node.grad.is_empty() {
                    store.grad_mut(pid).axpy(1.0, &node.grad);
                }
            }
        }
    }
}

fn elem_mul(a: &Tensor, b: &Tensor) -> Tensor {
    debug_assert_eq!(a.shape(), b.shape());
    let mut out = Tensor::zeros(a.rows(), a.cols());
    kernels::mul(a.data(), b.data(), out.data_mut());
    out
}

fn col_sums(g: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(1, g.cols());
    for r in 0..g.rows() {
        kernels::axpy(1.0, g.row(r), out.row_mut(0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_forward_and_backward() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = g.leaf(Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let y = g.matmul(a, b);
        assert_eq!(g.value(y).item(), 11.0);
        g.backward(y);
        assert_eq!(g.grad(a).data(), &[3.0, 4.0]);
        assert_eq!(g.grad(b).data(), &[1.0, 2.0]);
    }

    #[test]
    fn chain_rule_through_sigmoid() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(0.0));
        let y = g.sigmoid(x);
        let z = g.scale(y, 4.0);
        g.backward(z);
        // d/dx 4*sigmoid(x) at 0 = 4 * 0.25 = 1
        assert!((g.grad(x).item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gather_scatter_adds_for_repeats() {
        let mut g = Graph::new();
        let table = g.leaf(Tensor::from_vec(3, 1, vec![1.0, 2.0, 3.0]));
        let picked = g.gather_rows(table, &[1, 1, 2]);
        let s = g.sum_all(picked);
        g.backward(s);
        assert_eq!(g.grad(table).data(), &[0.0, 2.0, 1.0]);
    }

    #[test]
    fn masked_softmax_zeroes_masked_and_all_masked_rows() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(2, 2, vec![1.0, 2.0, 5.0, 5.0]));
        let mask = Tensor::from_vec(2, 2, vec![1.0, 1.0, 0.0, 0.0]);
        let y = g.softmax_rows_masked(x, Some(mask));
        let v = g.value(y);
        assert!((v.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert_eq!(v.row(1), &[0.0, 0.0]);
        assert!(!v.has_non_finite());
    }

    #[test]
    fn constants_receive_no_grad() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::scalar(2.0));
        let x = g.leaf(Tensor::scalar(3.0));
        let y = g.mul(c, x);
        g.backward(y);
        // Constants never get gradient storage — backward materializes
        // buffers only for gradient-requiring nodes.
        assert!(g.grad(c).is_empty());
        assert!(g.grad(c).data().iter().all(|&v| v == 0.0));
        assert_eq!(g.grad(x).item(), 2.0);
    }

    #[test]
    fn sum_vars_fans_out_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::scalar(1.0));
        let b = g.leaf(Tensor::scalar(2.0));
        let c = g.leaf(Tensor::scalar(3.0));
        let s = g.sum_vars(&[a, b, c]);
        assert_eq!(g.value(s).item(), 6.0);
        g.backward(s);
        for v in [a, b, c] {
            assert_eq!(g.grad(v).item(), 1.0);
        }
    }

    #[test]
    fn concat_rows_stacks_and_routes_gradients() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = g.leaf(Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let s = g.concat_rows(&[a, b]);
        assert_eq!(g.value(s).shape(), (3, 2));
        assert_eq!(g.value(s).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = g.constant(Tensor::from_vec(1, 3, vec![1.0, 10.0, 100.0]));
        let y = g.matmul(w, s);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(a).data(), &[1.0, 1.0]);
        assert_eq!(g.grad(b).data(), &[10.0, 10.0, 100.0, 100.0]);
    }

    #[test]
    fn block_mean_rows_matches_per_block_mean_rows_bitwise() {
        // Awkward values whose division is rounding-sensitive: the block op
        // must reproduce mean_rows on each slice exactly.
        let data: Vec<f32> = (0..7 * 3).map(|i| (i as f32 * 0.31).tan()).collect();
        let sizes = [1usize, 4, 2];
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(7, 3, data.clone()));
        let bm = g.block_mean_rows(x, &sizes);
        assert_eq!(g.value(bm).shape(), (3, 3));
        let mut off = 0;
        for (b, &n) in sizes.iter().enumerate() {
            let mut g2 = Graph::new();
            let xb = g2.leaf(Tensor::from_vec(
                n,
                3,
                data[off * 3..(off + n) * 3].to_vec(),
            ));
            let m = g2.mean_rows(xb);
            assert_eq!(
                g.value(bm)
                    .row(b)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                g2.value(m)
                    .row(0)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "block {b}"
            );
            off += n;
        }
        // gradient: each input row receives g_row / n_block
        let s = g.sum_all(bm);
        g.backward(s);
        assert_eq!(g.grad(x).get(0, 0), 1.0);
        assert_eq!(g.grad(x).get(2, 1), 0.25);
        assert_eq!(g.grad(x).get(6, 2), 0.5);
    }

    #[test]
    #[should_panic(expected = "sizes must sum to the row count")]
    fn block_mean_rows_rejects_bad_layout() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::zeros(5, 2));
        let _ = g.block_mean_rows(x, &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "backward root must be a scalar")]
    fn backward_requires_scalar_root() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::zeros(2, 2));
        g.backward(a);
    }

    /// A small forward+backward pass used by the arena-reuse tests.
    fn run_pass(g: &mut Graph, seed: f32) -> (Vec<u32>, Vec<u32>) {
        let x = g.leaf(Tensor::from_vec(
            2,
            3,
            vec![seed, -1.0, 2.5, 0.0, seed, 3.0],
        ));
        let w = g.leaf(Tensor::from_vec(
            3,
            2,
            vec![0.5, -0.25, seed, 1.0, -2.0, 0.75],
        ));
        let h = g.matmul(x, w);
        let act = g.tanh(h);
        let mask = Tensor::from_vec(2, 2, vec![1.0, 0.0, 1.0, 1.0]);
        let sm = g.softmax_rows_masked(act, Some(mask));
        let loss = g.sum_all(sm);
        g.backward(loss);
        let out = g.value(sm).data().iter().map(|v| v.to_bits()).collect();
        let gx = g.grad(x).data().iter().map(|v| v.to_bits()).collect();
        (out, gx)
    }

    #[test]
    fn cleared_graph_is_bit_identical_to_a_fresh_one() {
        let mut fresh = Graph::new();
        let expect = run_pass(&mut fresh, 1.25);

        let mut reused = Graph::new();
        // Warm the arena with a *different* pass first, then clear.
        let _ = run_pass(&mut reused, -3.5);
        reused.clear();
        assert!(reused.is_empty());
        let got = run_pass(&mut reused, 1.25);
        assert_eq!(expect, got, "arena reuse changed bits");

        // And again: repeated reuse stays exact.
        reused.clear();
        assert_eq!(expect, run_pass(&mut reused, 1.25));
    }

    #[test]
    fn clear_recycles_buffers_into_the_arena() {
        let mut g = Graph::new();
        let _ = run_pass(&mut g, 0.5);
        let nodes = g.len();
        assert!(nodes > 0);
        g.clear();
        assert_eq!(g.len(), 0);
        // The next pass pops recycled buffers instead of allocating: the
        // free list shrinks while the pass runs.
        let before = g.free.len();
        assert!(before >= nodes, "expected >= {nodes} pooled buffers");
        let _ = run_pass(&mut g, 0.5);
        assert!(g.free.len() < before, "pass did not draw from the arena");
    }

    #[test]
    fn arena_stays_bounded_across_many_reuses() {
        // Leaves and masks are allocated outside the pool and donated on
        // clear(); the cap must stop them from accumulating forever.
        let mut g = Graph::new();
        let mut sizes = Vec::new();
        for _ in 0..60 {
            let _ = run_pass(&mut g, 0.5);
            g.clear();
            sizes.push(g.free.len());
        }
        assert_eq!(
            sizes[40],
            *sizes.last().unwrap(),
            "free pool kept growing: {sizes:?}"
        );
    }

    #[test]
    fn param_copies_draw_from_the_arena_and_write_grads_back() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(1, 2, vec![2.0, -1.0]));
        store.zero_grads();
        let mut g = Graph::new();
        let wv = g.param(&store, w);
        let x = g.constant(Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let y = g.matmul(wv, x);
        g.backward(y);
        g.write_grads(&mut store);
        assert_eq!(store.grad(w).data(), &[3.0, 4.0]);
        // Reuse: same computation after clear gives the same gradient again.
        g.clear();
        store.zero_grads();
        let wv = g.param(&store, w);
        let x = g.constant(Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let y = g.matmul(wv, x);
        g.backward(y);
        g.write_grads(&mut store);
        assert_eq!(store.grad(w).data(), &[3.0, 4.0]);
    }
}
