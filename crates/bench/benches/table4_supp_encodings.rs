//! Table 4: supplementary NN encodings fed to the prediction head.
//!
//! Protocol (appendix A.2): CAZ + k-means sampler, 20 transfer samples;
//! rows are the base AdjOp predictor and each supplement.

use nasflat_bench::{fmt_cell, print_table, rosters, Budget, Workbench};
use nasflat_encode::EncodingKind;
use nasflat_sample::{Sampler, SelectionMethod};

fn main() {
    let budget = Budget::from_env();
    let variants: [(&str, Option<EncodingKind>); 5] = [
        ("AdjOp", None),
        ("(+ Arch2Vec)", Some(EncodingKind::Arch2Vec)),
        ("(+ CATE)", Some(EncodingKind::Cate)),
        ("(+ ZCP)", Some(EncodingKind::Zcp)),
        ("(+ CAZ)", Some(EncodingKind::Caz)),
    ];
    let mut rows: Vec<Vec<String>> = variants.iter().map(|(l, _)| vec![l.to_string()]).collect();

    for name in rosters::ALL {
        let wb = Workbench::new(name, &budget, true);
        for ((_, supp), row) in variants.iter().zip(rows.iter_mut()) {
            let mut cfg = budget.fewshot(wb.task.space);
            cfg.sampler = Sampler::Encoding {
                kind: EncodingKind::Caz,
                method: SelectionMethod::KMeans,
            };
            cfg.predictor.supplement = *supp;
            row.push(fmt_cell(&wb.cell(&cfg, budget.trials)));
        }
        eprintln!("[table4] {name} done");
    }

    let mut header = vec!["Encoding"];
    header.extend(rosters::ALL);
    print_table(
        "Table 4 — supplementary encodings (CAZ+kmeans sampler, 20 samples)",
        &header,
        &rows,
    );
}
