//! Analytic cost profiles (FLOPs, parameters, activation memory).
//!
//! These are computed from the architecture alone, mirroring how layer-wise
//! latency predictors, the params sampler, and FLOPs proxies operate. The
//! device simulator consumes the per-node costs to synthesize latencies.

/// Cost of one operation instance at a specific place in the network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Multiply-accumulate count (two per MAC not counted; consistent
    /// relative measure is all that matters here).
    pub flops: f64,
    /// Learnable parameter count.
    pub params: f64,
    /// Activation memory traffic in elements (input + output volumes).
    pub mem: f64,
}

impl OpCost {
    /// The zero cost (identity/zeroize-style ops).
    pub const ZERO: OpCost = OpCost {
        flops: 0.0,
        params: 0.0,
        mem: 0.0,
    };

    /// Scales all components (used for cell repetitions across stages).
    pub fn scale(self, k: f64) -> OpCost {
        OpCost {
            flops: self.flops * k,
            params: self.params * k,
            mem: self.mem * k,
        }
    }
}

impl core::ops::Add for OpCost {
    type Output = OpCost;

    /// Element-wise sum.
    fn add(self, other: OpCost) -> OpCost {
        OpCost {
            flops: self.flops + other.flops,
            params: self.params + other.params,
            mem: self.mem + other.mem,
        }
    }
}

/// Whole-architecture cost summary plus per-graph-node breakdown.
///
/// `node_costs` is aligned with [`ArchGraph`](crate::ArchGraph) node order
/// (entry 0 = INPUT and the last entry = OUTPUT are zero).
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Total FLOPs over the assembled network.
    pub total_flops: f64,
    /// Total parameters.
    pub total_params: f64,
    /// Total activation traffic.
    pub total_mem: f64,
    /// Per-node cost in graph-node order.
    pub node_costs: Vec<OpCost>,
}

impl CostProfile {
    /// Builds a profile from per-node costs.
    pub fn from_nodes(node_costs: Vec<OpCost>) -> Self {
        let total_flops = node_costs.iter().map(|c| c.flops).sum();
        let total_params = node_costs.iter().map(|c| c.params).sum();
        let total_mem = node_costs.iter().map(|c| c.mem).sum();
        CostProfile {
            total_flops,
            total_params,
            total_mem,
            node_costs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_nodes() {
        let p = CostProfile::from_nodes(vec![
            OpCost::ZERO,
            OpCost {
                flops: 10.0,
                params: 2.0,
                mem: 4.0,
            },
            OpCost {
                flops: 5.0,
                params: 1.0,
                mem: 2.0,
            },
        ]);
        assert_eq!(p.total_flops, 15.0);
        assert_eq!(p.total_params, 3.0);
        assert_eq!(p.total_mem, 6.0);
    }

    #[test]
    fn scale_and_add() {
        let c = OpCost {
            flops: 1.0,
            params: 2.0,
            mem: 3.0,
        }
        .scale(2.0);
        assert_eq!(c.flops, 2.0);
        let s = c + OpCost {
            flops: 1.0,
            params: 1.0,
            mem: 1.0,
        };
        assert_eq!(s.params, 5.0);
    }
}
