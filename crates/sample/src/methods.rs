//! Encoding-space selection methods: cosine farthest-point and k-means
//! medoids (paper §4.2, Table 9).
//!
//! The hot loops — per-candidate similarity/distance evaluation over the
//! whole pool — run in parallel via `nasflat-parallel` once a scan is big
//! enough to amortize worker spawns ([`pool_scan`]); small quick-mode pools
//! stay sequential. Selections stay deterministic at any thread count
//! either way: both paths are the same pure elementwise map in input order,
//! and every reduction (arg-min scans, centroid accumulation) stays
//! sequential.
//!
//! Cosine scans run over an [`EncodingCache`]: the normalized encoding
//! matrix plus its precomputed row norms. Building the cache from an
//! [`EncodingSuite`](nasflat_encode::EncodingSuite)'s stored norms (as
//! [`Sampler::select`](crate::Sampler::select) does) means the norms are
//! derived **once per pool** and reused across samplers, trials, and bench
//! tables instead of being recomputed inside every similarity call.

use std::borrow::Cow;

use rand::Rng;

use nasflat_encode::{cosine_similarity, row_norms};
use nasflat_parallel::{par_map, par_map_range};

/// Minimum `rows × dim` scalar work before a pool scan fans out: below
/// this, per-worker thread-spawn cost (~tens of µs) exceeds the scan
/// itself. Both branches compute identical bits, so the threshold affects
/// wall-clock only, never results.
const MIN_PAR_SCAN_SCALARS: usize = 1 << 15;

/// Elementwise map over encoding rows: parallel for large scans, sequential
/// for small ones (same output either way).
fn pool_scan<R: Send>(rows: &[Vec<f32>], f: impl Fn(&Vec<f32>) -> R + Sync) -> Vec<R> {
    let work = rows.len() * rows.first().map_or(0, Vec::len);
    if work >= MIN_PAR_SCAN_SCALARS {
        par_map(rows, f)
    } else {
        rows.iter().map(f).collect()
    }
}

/// Index-based [`pool_scan`] twin for cache-backed scans.
fn pool_scan_idx<R: Send>(n: usize, dim: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    if n * dim >= MIN_PAR_SCAN_SCALARS {
        par_map_range(n, f)
    } else {
        (0..n).map(f).collect()
    }
}

/// A normalized encoding matrix bundled with its per-row Euclidean norms,
/// the unit of reuse for cosine pool scans.
///
/// [`EncodingCache::new`] derives the norms once from the rows;
/// [`EncodingCache::with_norms`] borrows norms something longer-lived (an
/// `EncodingSuite`) already holds, so repeated selections over one pool
/// never re-derive them. Either way [`EncodingCache::cosine`] is
/// bit-identical to [`cosine_similarity`] on the same rows: the dot product
/// accumulates in the same `f64` index order and the denominator multiplies
/// the same `f64` square-rooted norms.
pub struct EncodingCache<'a> {
    rows: &'a [Vec<f32>],
    norms: Cow<'a, [f64]>,
}

impl<'a> EncodingCache<'a> {
    /// Builds a cache, deriving the row norms.
    pub fn new(rows: &'a [Vec<f32>]) -> Self {
        EncodingCache {
            rows,
            norms: Cow::Owned(row_norms(rows)),
        }
    }

    /// Builds a cache around norms precomputed elsewhere (they must be
    /// [`row_norms`] of `rows`).
    ///
    /// # Panics
    /// Panics if `norms` and `rows` disagree in length.
    pub fn with_norms(rows: &'a [Vec<f32>], norms: &'a [f64]) -> Self {
        assert_eq!(rows.len(), norms.len(), "one norm per encoding row");
        EncodingCache {
            rows,
            norms: Cow::Borrowed(norms),
        }
    }

    /// Number of encoded architectures.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The encoding rows.
    pub fn rows(&self) -> &'a [Vec<f32>] {
        self.rows
    }

    /// Cosine similarity of rows `i` and `j`, reusing the cached norms
    /// (bit-identical to [`cosine_similarity`]; 0.0 when either row is a
    /// zero vector).
    pub fn cosine(&self, i: usize, j: usize) -> f32 {
        let (na, nb) = (self.norms[i], self.norms[j]);
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let mut dot = 0.0f64;
        for (&x, &y) in self.rows[i].iter().zip(&self.rows[j]) {
            dot += x as f64 * y as f64;
        }
        (dot / (na * nb)) as f32
    }
}

/// Why a selection method could not produce `k` architectures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Requested more samples than the pool holds.
    PoolTooSmall {
        /// Requested sample count.
        requested: usize,
        /// Available pool size.
        available: usize,
    },
    /// k-means could not segment the encoding space into `k` non-empty
    /// clusters (the paper reports this as NaN entries in Table 9).
    DegenerateClusters {
        /// Number of clusters that stayed non-empty.
        nonempty: usize,
        /// Requested cluster count.
        requested: usize,
    },
}

impl core::fmt::Display for SelectError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SelectError::PoolTooSmall {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} samples from a pool of {available}"
                )
            }
            SelectError::DegenerateClusters {
                nonempty,
                requested,
            } => {
                write!(
                    f,
                    "k-means produced {nonempty}/{requested} non-empty clusters"
                )
            }
        }
    }
}

impl std::error::Error for SelectError {}

/// Cosine farthest-point selection: greedily grows a set whose members have
/// minimal cosine similarity to each other, starting from a random seed
/// point. Low average pairwise similarity ⇒ wide design-space coverage
/// (paper §4.2, "Cosine Similarity").
///
/// Derives an [`EncodingCache`] internally; callers selecting repeatedly
/// over one pool should build the cache once and use
/// [`cosine_select_cached`].
///
/// # Errors
/// Returns [`SelectError::PoolTooSmall`] when `k > rows.len()`.
pub fn cosine_select<R: Rng>(
    rows: &[Vec<f32>],
    k: usize,
    rng: &mut R,
) -> Result<Vec<usize>, SelectError> {
    cosine_select_cached(&EncodingCache::new(rows), k, rng)
}

/// [`cosine_select`] over a prebuilt [`EncodingCache`], so the row norms are
/// computed (or borrowed from an encoding suite) once per pool instead of
/// once per similarity call. Bit-identical to [`cosine_select`].
///
/// # Errors
/// Returns [`SelectError::PoolTooSmall`] when `k > cache.len()`.
pub fn cosine_select_cached<R: Rng>(
    cache: &EncodingCache<'_>,
    k: usize,
    rng: &mut R,
) -> Result<Vec<usize>, SelectError> {
    let n = cache.len();
    if k > n {
        return Err(SelectError::PoolTooSmall {
            requested: k,
            available: n,
        });
    }
    let mut picked: Vec<usize> = Vec::with_capacity(k);
    if k == 0 {
        return Ok(picked);
    }
    let dim = cache.rows().first().map_or(0, Vec::len);
    picked.push(rng.random_range(0..n));
    // max similarity to the picked set, per candidate (parallel pool scan)
    let mut max_sim: Vec<f32> = pool_scan_idx(n, dim, |i| cache.cosine(i, picked[0]));
    while picked.len() < k {
        let mut best = None;
        let mut best_sim = f32::INFINITY;
        for (i, &s) in max_sim.iter().enumerate() {
            if picked.contains(&i) {
                continue;
            }
            if s < best_sim {
                best_sim = s;
                best = Some(i);
            }
        }
        let chosen = best.expect("pool larger than k ensures a candidate");
        picked.push(chosen);
        let sims = pool_scan_idx(n, dim, |i| cache.cosine(i, chosen));
        for (s, sim) in max_sim.iter_mut().zip(sims) {
            if sim > *s {
                *s = sim;
            }
        }
    }
    Ok(picked)
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum()
}

/// k-means medoid selection: clusters the encodings with Lloyd's algorithm
/// (k-means++ init) and returns, per cluster, the pool member closest to the
/// centroid — "most representative of its cluster" (paper §4.2).
///
/// # Errors
/// - [`SelectError::PoolTooSmall`] when `k > rows.len()`;
/// - [`SelectError::DegenerateClusters`] when any cluster empties out and
///   cannot be refilled because the encodings collapse to fewer than `k`
///   distinct points (the paper's NaN case, e.g. CATE on FBNet).
pub fn kmeans_select<R: Rng>(
    rows: &[Vec<f32>],
    k: usize,
    rng: &mut R,
) -> Result<Vec<usize>, SelectError> {
    if k > rows.len() {
        return Err(SelectError::PoolTooSmall {
            requested: k,
            available: rows.len(),
        });
    }
    if k == 0 {
        return Ok(Vec::new());
    }
    let n = rows.len();

    // k-means++ initialization.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(rows[rng.random_range(0..n)].clone());
    let mut d2: Vec<f64> = pool_scan(rows, |r| sq_dist(r, &centroids[0]));
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            // All remaining mass is on already-chosen points: the encoding
            // space has < k distinct points.
            return Err(SelectError::DegenerateClusters {
                nonempty: centroids.len(),
                requested: k,
            });
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = n - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(rows[chosen].clone());
        let latest = centroids.last().expect("just pushed");
        let nd = pool_scan(rows, |r| sq_dist(r, latest));
        for (d, nd) in d2.iter_mut().zip(nd) {
            if nd < *d {
                *d = nd;
            }
        }
    }

    let dim = rows[0].len();
    let mut assign = vec![0usize; n];
    for _ in 0..25 {
        // Assignment — the O(n·k·dim) hot loop — is an elementwise arg-min,
        // safe to fan out; the centroid update below stays sequential so
        // float accumulation order never depends on the thread count.
        let new_assign: Vec<usize> = pool_scan(rows, |row| {
            (0..k)
                .min_by(|&a, &b| {
                    sq_dist(row, &centroids[a])
                        .partial_cmp(&sq_dist(row, &centroids[b]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("k > 0")
        });
        let mut moved = false;
        for (a, na) in assign.iter_mut().zip(new_assign) {
            if *a != na {
                *a = na;
                moved = true;
            }
        }
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in rows.iter().enumerate() {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(row) {
                *s += v as f64;
            }
        }
        if counts.contains(&0) {
            let nonempty = counts.iter().filter(|&&c| c > 0).count();
            return Err(SelectError::DegenerateClusters {
                nonempty,
                requested: k,
            });
        }
        for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            for (cv, &s) in c.iter_mut().zip(sum) {
                *cv = (s / count as f64) as f32;
            }
        }
        if !moved {
            break;
        }
    }

    // Medoid per cluster: pool member nearest its centroid.
    let mut medoids = vec![usize::MAX; k];
    let mut best_d = vec![f64::INFINITY; k];
    for (i, row) in rows.iter().enumerate() {
        let c = assign[i];
        let d = sq_dist(row, &centroids[c]);
        if d < best_d[c] {
            best_d[c] = d;
            medoids[c] = i;
        }
    }
    if medoids.contains(&usize::MAX) {
        let nonempty = medoids.iter().filter(|&&m| m != usize::MAX).count();
        return Err(SelectError::DegenerateClusters {
            nonempty,
            requested: k,
        });
    }
    // Medoids can coincide when clusters share a closest point after ties;
    // deduplicate defensively and fail loudly if coverage was lost.
    let mut seen = std::collections::HashSet::new();
    for &m in &medoids {
        if !seen.insert(m) {
            return Err(SelectError::DegenerateClusters {
                nonempty: seen.len(),
                requested: k,
            });
        }
    }
    Ok(medoids)
}

/// Mean pairwise cosine similarity of the selected rows — the diversity
/// diagnostic used to compare selection methods.
pub fn mean_pairwise_similarity(rows: &[Vec<f32>], picked: &[usize]) -> f32 {
    if picked.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (ai, &a) in picked.iter().enumerate() {
        for &b in picked.iter().skip(ai + 1) {
            total += cosine_similarity(&rows[a], &rows[b]) as f64;
            count += 1;
        }
    }
    (total / count as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_rows() -> Vec<Vec<f32>> {
        // three well-separated blobs of 5 points each
        let mut rows = Vec::new();
        for (cx, cy) in [(0.0f32, 10.0), (10.0, 0.0), (-10.0, -10.0)] {
            for i in 0..5 {
                rows.push(vec![cx + i as f32 * 0.1, cy - i as f32 * 0.1]);
            }
        }
        rows
    }

    #[test]
    fn kmeans_finds_one_medoid_per_blob() {
        let rows = blob_rows();
        let mut rng = StdRng::seed_from_u64(0);
        let picked = kmeans_select(&rows, 3, &mut rng).unwrap();
        let blobs: std::collections::HashSet<usize> = picked.iter().map(|&i| i / 5).collect();
        assert_eq!(blobs.len(), 3, "one medoid per blob, got {picked:?}");
    }

    #[test]
    fn kmeans_degenerates_on_identical_points() {
        let rows = vec![vec![1.0, 1.0]; 10];
        let mut rng = StdRng::seed_from_u64(1);
        let err = kmeans_select(&rows, 3, &mut rng).unwrap_err();
        assert!(
            matches!(err, SelectError::DegenerateClusters { .. }),
            "{err}"
        );
    }

    #[test]
    fn cosine_picks_spread_directions() {
        let rows = vec![
            vec![1.0, 0.0],
            vec![0.99, 0.01],
            vec![0.0, 1.0],
            vec![0.01, 0.99],
            vec![-1.0, 0.0],
        ];
        let mut rng = StdRng::seed_from_u64(2);
        let picked = cosine_select(&rows, 3, &mut rng).unwrap();
        let sim = mean_pairwise_similarity(&rows, &picked);
        // the three picks should span distinct directions (low mean sim)
        assert!(sim < 0.5, "mean similarity {sim} too high for {picked:?}");
    }

    #[test]
    fn cosine_is_more_diverse_than_random_on_average() {
        use crate::basic::random_indices;
        let rows = blob_rows();
        let mut cos_sims = Vec::new();
        let mut rand_sims = Vec::new();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = cosine_select(&rows, 3, &mut rng).unwrap();
            cos_sims.push(mean_pairwise_similarity(&rows, &c));
            let r = random_indices(rows.len(), 3, &mut rng);
            rand_sims.push(mean_pairwise_similarity(&rows, &r));
        }
        let cm: f32 = cos_sims.iter().sum::<f32>() / cos_sims.len() as f32;
        let rm: f32 = rand_sims.iter().sum::<f32>() / rand_sims.len() as f32;
        assert!(
            cm < rm,
            "cosine {cm} should be more diverse than random {rm}"
        );
    }

    #[test]
    fn cached_cosine_matches_cosine_similarity_bitwise() {
        let rows = blob_rows();
        let cache = EncodingCache::new(&rows);
        let norms = nasflat_encode::row_norms(&rows);
        let borrowed = EncodingCache::with_norms(&rows, &norms);
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                let direct = cosine_similarity(&rows[i], &rows[j]);
                assert_eq!(direct.to_bits(), cache.cosine(i, j).to_bits());
                assert_eq!(direct.to_bits(), borrowed.cosine(i, j).to_bits());
            }
        }
        // zero rows short-circuit to 0.0 exactly like cosine_similarity
        let with_zero = vec![vec![0.0f32, 0.0], vec![1.0, 2.0]];
        let zc = EncodingCache::new(&with_zero);
        assert_eq!(zc.cosine(0, 1), 0.0);
    }

    #[test]
    fn cached_selection_matches_uncached_selection() {
        let rows = blob_rows();
        let norms = nasflat_encode::row_norms(&rows);
        for seed in 0..10 {
            let mut r1 = StdRng::seed_from_u64(seed);
            let plain = cosine_select(&rows, 5, &mut r1).unwrap();
            let mut r2 = StdRng::seed_from_u64(seed);
            let cached =
                cosine_select_cached(&EncodingCache::with_norms(&rows, &norms), 5, &mut r2)
                    .unwrap();
            assert_eq!(plain, cached);
        }
    }

    #[test]
    #[should_panic(expected = "one norm per encoding row")]
    fn mismatched_norms_are_rejected() {
        let rows = blob_rows();
        let _ = EncodingCache::with_norms(&rows, &[1.0]);
    }

    #[test]
    fn oversized_k_is_an_error() {
        let rows = vec![vec![0.0], vec![1.0]];
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(
            cosine_select(&rows, 3, &mut rng),
            Err(SelectError::PoolTooSmall { .. })
        ));
        assert!(matches!(
            kmeans_select(&rows, 3, &mut rng),
            Err(SelectError::PoolTooSmall { .. })
        ));
    }

    #[test]
    fn zero_k_selects_nothing() {
        let rows = blob_rows();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(cosine_select(&rows, 0, &mut rng).unwrap().is_empty());
        assert!(kmeans_select(&rows, 0, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn selections_are_distinct_indices() {
        let rows = blob_rows();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            for picked in [
                cosine_select(&rows, 6, &mut rng).unwrap(),
                kmeans_select(&rows, 3, &mut rng).unwrap(),
            ] {
                let set: std::collections::HashSet<_> = picked.iter().collect();
                assert_eq!(set.len(), picked.len(), "duplicates in {picked:?}");
                assert!(picked.iter().all(|&i| i < rows.len()));
            }
        }
    }
}
