//! CATE: computation-aware transformer encoding (Yan et al. 2021).
//!
//! CATE learns encodings by masked-operation modeling over *pairs* of
//! computationally similar architectures: some operation tokens of
//! architecture `a` are masked, the sequence is concatenated with the tokens
//! of a FLOPs-nearest partner `b`, and a small transformer must recover the
//! masked operations. Architectures with similar computation end up with
//! similar latents. This reproduction keeps the objective shape at a small
//! scale: one single-head transformer block with `d = 32` (DESIGN.md §2).
//!
//! Cross-entropy is replaced by a multi-class hinge on the output logits —
//! equivalent for representation learning and implementable without a log op
//! on the autograd tape.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use nasflat_space::{Arch, Space};
use nasflat_tensor::{
    Activation, AdamConfig, Embedding, Graph, LayerNorm, Linear, Mlp, ParamStore, Tensor, Var,
};

/// Hyperparameters for CATE training.
#[derive(Debug, Clone)]
pub struct CateConfig {
    /// Model (and encoding) width; the paper's encodings are 32-dim.
    pub model_dim: usize,
    /// Feed-forward hidden width.
    pub ffn_dim: usize,
    /// Fraction of `a`'s tokens to mask per example.
    pub mask_prob: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (architecture pairs per step).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CateConfig {
    fn default() -> Self {
        CateConfig {
            model_dim: 32,
            ffn_dim: 64,
            mask_prob: 0.3,
            epochs: 20,
            batch_size: 16,
            lr: 1e-3,
            seed: 0,
        }
    }
}

impl CateConfig {
    /// A fast low-budget config for tests and smoke runs.
    pub fn quick() -> Self {
        CateConfig {
            model_dim: 16,
            ffn_dim: 32,
            epochs: 4,
            ..Self::default()
        }
    }
}

/// A trained CATE encoder for one search space.
#[derive(Debug)]
pub struct Cate {
    space: Space,
    store: ParamStore,
    token_emb: Embedding,
    pos_emb: Embedding,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    ln1: LayerNorm,
    ffn: Mlp,
    ln2: LayerNorm,
    head: Linear,
    model_dim: usize,
    mask_token: usize,
}

impl Cate {
    /// Trains the masked-operation transformer on `pool`.
    ///
    /// Pairs are formed by nearest total-FLOPs partner within the pool — the
    /// "computationally similar" clustering of the original paper.
    ///
    /// # Panics
    /// Panics if `pool` has fewer than two architectures or mixes spaces.
    pub fn train(pool: &[Arch], cfg: &CateConfig) -> Self {
        assert!(pool.len() >= 2, "CATE needs at least two architectures");
        let space = pool[0].space();
        assert!(pool.iter().all(|a| a.space() == space), "mixed-space pool");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vocab = space.vocab_size();
        let n = space.graph_nodes();
        let d = cfg.model_dim;

        let mut store = ParamStore::new();
        let token_emb = Embedding::new(&mut store, "cate.tok", vocab + 1, d, &mut rng);
        let pos_emb = Embedding::new(&mut store, "cate.pos", 2 * n, d, &mut rng);
        let wq = Linear::new(&mut store, "cate.wq", d, d, &mut rng);
        let wk = Linear::new(&mut store, "cate.wk", d, d, &mut rng);
        let wv = Linear::new(&mut store, "cate.wv", d, d, &mut rng);
        let wo = Linear::new(&mut store, "cate.wo", d, d, &mut rng);
        let ln1 = LayerNorm::new(&mut store, "cate.ln1", d);
        let ffn = Mlp::new(
            &mut store,
            "cate.ffn",
            &[d, cfg.ffn_dim, d],
            Activation::Relu,
            &mut rng,
        );
        let ln2 = LayerNorm::new(&mut store, "cate.ln2", d);
        let head = Linear::new(&mut store, "cate.head", d, vocab, &mut rng);
        let mut model = Cate {
            space,
            store,
            token_emb,
            pos_emb,
            wq,
            wk,
            wv,
            wo,
            ln1,
            ffn,
            ln2,
            head,
            model_dim: d,
            mask_token: vocab,
        };

        let partners = flops_partners(pool);
        let adam = AdamConfig::default().with_lr(cfg.lr);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                model.store.zero_grads();
                let mut g = Graph::new();
                let mut losses = Vec::new();
                for &i in chunk {
                    if let Some(loss) = model.masked_loss(
                        &mut g,
                        &pool[i],
                        &pool[partners[i]],
                        cfg.mask_prob,
                        &mut rng,
                    ) {
                        losses.push(loss);
                    }
                }
                if losses.is_empty() {
                    continue;
                }
                let total = g.sum_vars(&losses);
                let loss = g.scale(total, 1.0 / losses.len() as f32);
                g.backward(loss);
                g.write_grads(&mut model.store);
                model.store.clip_grad_norm(5.0);
                model.store.adam_step(&adam);
            }
        }
        model
    }

    /// The search space this encoder was trained on.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Encoding width.
    pub fn model_dim(&self) -> usize {
        self.model_dim
    }

    /// One transformer block over a token sequence with given positions.
    fn block(&self, g: &mut Graph, tokens: &[usize], positions: &[usize]) -> Var {
        let te = self.token_emb.forward(g, &self.store, tokens);
        let pe = self.pos_emb.forward(g, &self.store, positions);
        let x = g.add(te, pe);
        let q = self.wq.forward(g, &self.store, x);
        let k = self.wk.forward(g, &self.store, x);
        let v = self.wv.forward(g, &self.store, x);
        let kt = g.transpose(k);
        let scores = g.matmul(q, kt);
        let scores = g.scale(scores, 1.0 / (self.model_dim as f32).sqrt());
        let attn = g.softmax_rows_masked(scores, None);
        let ctx = g.matmul(attn, v);
        let ctx = self.wo.forward(g, &self.store, ctx);
        let res = g.add(x, ctx);
        let h = self.ln1.forward(g, &self.store, res);
        let f = self.ffn.forward(g, &self.store, h);
        let res2 = g.add(h, f);
        self.ln2.forward(g, &self.store, res2)
    }

    /// Masked-op hinge loss on pair (a, b). Returns `None` if no token got
    /// masked (can happen at low mask probabilities).
    fn masked_loss<R: Rng>(
        &self,
        g: &mut Graph,
        a: &Arch,
        b: &Arch,
        mask_prob: f64,
        rng: &mut R,
    ) -> Option<Var> {
        let ga = a.to_graph();
        let gb = b.to_graph();
        let n = ga.num_nodes();
        let vocab = self.space.vocab_size();

        let mut tokens: Vec<usize> = Vec::with_capacity(2 * n);
        let mut masked_pos: Vec<usize> = Vec::new();
        let mut masked_ops: Vec<usize> = Vec::new();
        for (i, &op) in ga.ops().iter().enumerate() {
            // Only real operation tokens (not INPUT/OUTPUT) are maskable.
            if op >= 2 && rng.random_bool(mask_prob) {
                tokens.push(self.mask_token);
                masked_pos.push(i);
                masked_ops.push(op);
            } else {
                tokens.push(op);
            }
        }
        tokens.extend_from_slice(gb.ops());
        if masked_pos.is_empty() {
            return None;
        }
        let positions: Vec<usize> = (0..2 * n).collect();
        let h = self.block(g, &tokens, &positions);
        let picked = g.gather_rows(h, &masked_pos);
        let logits = self.head.forward(g, &self.store, picked);

        // Multi-class hinge: sum_c relu(1 + logit_c - logit_target) - 1 per row.
        let m = masked_pos.len();
        let mut onehot = Tensor::zeros(m, vocab);
        for (r, &op) in masked_ops.iter().enumerate() {
            onehot.set(r, op, 1.0);
        }
        let onehot = g.constant(onehot);
        let sel = g.mul(logits, onehot);
        let ones_col = g.constant(Tensor::full(vocab, 1, 1.0));
        let target_logit = g.matmul(sel, ones_col); // m×1
        let ones_row = g.constant(Tensor::full(1, vocab, 1.0));
        let target_bcast = g.matmul(target_logit, ones_row); // m×vocab
        let diff = g.sub(logits, target_bcast);
        let margins = g.add_scalar(diff, 1.0);
        let hinge = g.relu(margins);
        let total = g.sum_all(hinge);
        let corrected = g.add_scalar(total, -(m as f32)); // remove c == target terms
        Some(g.scale(corrected, 1.0 / (m * vocab) as f32))
    }

    /// Encodes one architecture: transformer over its own (unmasked) tokens,
    /// mean-pooled hidden state.
    ///
    /// # Panics
    /// Panics if `arch` belongs to a different space.
    pub fn encode(&self, arch: &Arch) -> Vec<f32> {
        assert_eq!(arch.space(), self.space, "arch from a different space");
        let graph = arch.to_graph();
        let n = graph.num_nodes();
        let positions: Vec<usize> = (0..n).collect();
        let mut g = Graph::new();
        let h = self.block(&mut g, graph.ops(), &positions);
        let pooled = g.mean_rows(h);
        g.value(pooled).row(0).to_vec()
    }

    /// Fraction of masked tokens recovered correctly on a probe set (training
    /// diagnostic).
    pub fn masked_accuracy(&self, pool: &[Arch], seed: u64) -> f32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let partners = flops_partners(pool);
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, a) in pool.iter().enumerate() {
            let ga = a.to_graph();
            let gb = pool[partners[i]].to_graph();
            let n = ga.num_nodes();
            let mask_at = rng.random_range(1..n - 1);
            let mut tokens: Vec<usize> = ga.ops().to_vec();
            let truth = tokens[mask_at];
            if truth < 2 {
                continue;
            }
            tokens[mask_at] = self.mask_token;
            tokens.extend_from_slice(gb.ops());
            let positions: Vec<usize> = (0..2 * n).collect();
            let mut g = Graph::new();
            let h = self.block(&mut g, &tokens, &positions);
            let picked = g.gather_rows(h, &[mask_at]);
            let logits = self.head.forward(&mut g, &self.store, picked);
            let row = g.value(logits).row(0);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            total += 1;
            if pred == truth {
                correct += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f32 / total as f32
    }
}

/// For every pool index, the index of its nearest-FLOPs partner (never
/// itself) — the computational-similarity pairing CATE trains on.
pub fn flops_partners(pool: &[Arch]) -> Vec<usize> {
    assert!(pool.len() >= 2, "need at least two architectures to pair");
    let flops: Vec<f64> = pool.iter().map(|a| a.cost_profile().total_flops).collect();
    let mut order: Vec<usize> = (0..pool.len()).collect();
    order.sort_by(|&a, &b| {
        flops[a]
            .partial_cmp(&flops[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut partner = vec![0usize; pool.len()];
    for (rank, &idx) in order.iter().enumerate() {
        let neighbor = if rank == 0 {
            order[1]
        } else if rank == order.len() - 1 {
            order[rank - 1]
        } else {
            // Choose the closer of the two flops-neighbors.
            let lo = order[rank - 1];
            let hi = order[rank + 1];
            if (flops[idx] - flops[lo]).abs() <= (flops[hi] - flops[idx]).abs() {
                lo
            } else {
                hi
            }
        };
        partner[idx] = neighbor;
    }
    partner
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(n: usize) -> Vec<Arch> {
        (0..n as u64)
            .map(|i| Arch::nb201_from_index((i * 211 + 3) % 15625))
            .collect()
    }

    #[test]
    fn partners_are_never_self_and_flops_close() {
        let pool = small_pool(20);
        let partners = flops_partners(&pool);
        for (i, &p) in partners.iter().enumerate() {
            assert_ne!(i, p);
            assert!(p < pool.len());
        }
    }

    #[test]
    fn encodings_deterministic_and_sized() {
        let pool = small_pool(24);
        let model = Cate::train(&pool, &CateConfig::quick());
        let e1 = model.encode(&pool[0]);
        assert_eq!(e1, model.encode(&pool[0]));
        assert_eq!(e1.len(), model.model_dim());
        assert!(e1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_improves_masked_recovery() {
        let pool = small_pool(48);
        let mut cfg = CateConfig::quick();
        cfg.epochs = 0;
        let untrained = Cate::train(&pool, &cfg);
        cfg.epochs = 10;
        let trained = Cate::train(&pool, &cfg);
        let acc_untrained = untrained.masked_accuracy(&pool, 5);
        let acc_trained = trained.masked_accuracy(&pool, 5);
        assert!(
            acc_trained >= acc_untrained,
            "training should not hurt masked accuracy: {acc_trained} vs {acc_untrained}"
        );
    }

    #[test]
    fn computationally_similar_archs_encode_closer() {
        use crate::normalize::cosine_similarity;
        // all-conv3x3 vs one-op-different should be closer than all-skip.
        let pool = small_pool(32);
        let model = Cate::train(&pool, &CateConfig::quick());
        let heavy = model.encode(&Arch::new(Space::Nb201, vec![3; 6]));
        let near = model.encode(&Arch::new(Space::Nb201, vec![3, 3, 3, 3, 3, 2]));
        let far = model.encode(&Arch::new(Space::Nb201, vec![1; 6]));
        let sim_near = cosine_similarity(&heavy, &near);
        let sim_far = cosine_similarity(&heavy, &far);
        assert!(
            sim_near > sim_far,
            "near {sim_near} should beat far {sim_far}"
        );
    }
}
