//! The latency simulator: turns (device, architecture) into milliseconds.
//!
//! This is the substitute for the measured HW-NAS-Bench / EAGLE latency
//! tables (see DESIGN.md). Per graph node the model charges:
//!
//! - a dispatch **overhead** (dominates batch-1 GPUs → ranks by op count),
//! - a **compute** term `(flops·batch + occupancy_floor) / eff` scaled by
//!   op-kind affinities (conv-optimized ASICs, grouped-conv fallbacks,
//!   depthwise penalties),
//! - a **memory** term `mem·batch / mem_bw` (dominates small CPUs).
//!
//! Whole-network latency blends the serial sum with the critical path
//! according to the device's branch parallelism, applies operator-fusion
//! discounts along unary chains, and multiplies deterministic lognormal
//! measurement noise keyed by (device, architecture).

use crate::device::Device;
use crate::rng::{combine, fnv1a, lognormal_jitter};
use nasflat_space::{Arch, OpKind};

/// Kernel-selection quirk: a deterministic multiplier on the *fixed* cost
/// of an op (overhead + occupancy floor) that depends on the device class
/// and the op's vocabulary id. This models compiler/kernel-library
/// fingerprints: all batch-1 GPUs pick the same cuDNN algorithms (high
/// mutual correlation) whose small-batch cost is only weakly related to
/// FLOPs (low correlation with large-batch or flops-bound devices).
fn op_quirk(device: &Device, vocab_id: usize) -> f64 {
    let class_seed = fnv1a(device.class().label().as_bytes());
    let shared = lognormal_jitter(combine(class_seed, vocab_id as u64), 0.30);
    let per_dev = lognormal_jitter(combine(device.seed(), vocab_id as u64 ^ 0xA5A5), 0.08);
    shared * per_dev
}

/// Stable hash of an architecture (keys measurement noise).
fn arch_hash(arch: &Arch) -> u64 {
    let tag: u8 = match arch.space() {
        nasflat_space::Space::Nb201 => 1,
        nasflat_space::Space::Fbnet => 2,
    };
    let mut bytes = vec![tag];
    bytes.extend_from_slice(arch.genotype());
    fnv1a(&bytes)
}

/// Noise-free latency in milliseconds.
pub fn latency_clean_ms(device: &Device, arch: &Arch) -> f64 {
    let graph = arch.to_graph();
    let prof = arch.cost_profile();
    let p = device.profile();
    let b = device.batch() as f64;
    let n = graph.num_nodes();
    let space = arch.space();

    // Per-node time.
    let mut t = vec![0.0f64; n];
    for (i, ti) in t.iter_mut().enumerate() {
        let vocab_id = graph.ops()[i];
        let desc = space.op_desc(vocab_id);
        let c = prof.node_costs[i];
        let mem_time = c.mem * b / p.mem_bw;
        let quirk = op_quirk(device, vocab_id);
        *ti = match desc.kind {
            OpKind::Input | OpKind::Output | OpKind::None => 0.0,
            OpKind::Skip => p.overhead * p.skip_affinity * quirk + mem_time,
            OpKind::Pool => {
                (p.overhead + 0.02 * p.occupancy_floor / p.eff) * p.pool_affinity * quirk
                    + c.flops * b / p.eff * p.pool_affinity
                    + mem_time
            }
            OpKind::Conv | OpKind::Block => {
                let mut aff = p.conv_affinity;
                if desc.groups > 1 {
                    aff *= p.group_penalty;
                }
                aff *= 1.0 + desc.dw_fraction as f64 * (p.depthwise_penalty - 1.0);
                if desc.kernel == 1 {
                    // Pointwise convs utilize wide datapaths slightly worse.
                    aff *= 1.05;
                }
                (p.overhead + p.occupancy_floor / p.eff * aff) * quirk
                    + c.flops * b / p.eff * aff
                    + mem_time
            }
        };
    }

    // Operator fusion: a node whose single predecessor feeds only it can be
    // fused by the compiler, recovering part of its dispatch overhead.
    for (j, tj) in t.iter_mut().enumerate() {
        let preds = graph.preds(j);
        if preds.len() != 1 {
            continue;
        }
        let u = preds[0];
        if graph.succs(u).len() != 1 {
            continue;
        }
        let ku = space.op_desc(graph.ops()[u]).kind;
        let kj = space.op_desc(graph.ops()[j]).kind;
        let fusable = |k: OpKind| {
            matches!(
                k,
                OpKind::Conv | OpKind::Block | OpKind::Pool | OpKind::Skip
            )
        };
        if fusable(ku) && fusable(kj) {
            *tj = (*tj - p.fusion_discount * p.overhead).max(0.0);
        }
    }

    // Serial sum vs critical path, blended by branch parallelism.
    let serial: f64 = t.iter().sum();
    let mut dist = vec![0.0f64; n];
    for j in 0..n {
        let best = graph
            .preds(j)
            .iter()
            .map(|&i| dist[i])
            .fold(0.0f64, f64::max);
        dist[j] = best + t[j];
    }
    let critical = dist[n - 1];
    let body = p.branch_parallelism * critical + (1.0 - p.branch_parallelism) * serial;

    // Fixed stem + classifier cost.
    let stem_flops = 9.0 * 3.0 * 16.0 * 32.0 * 32.0 + 64.0 * 100.0;
    let base = 2.0 * p.overhead + (stem_flops * b + p.occupancy_floor) / p.eff;

    body + base
}

/// Measured latency in milliseconds: the clean latency with deterministic
/// lognormal measurement noise (same (device, arch) → same value).
pub fn latency_ms(device: &Device, arch: &Arch) -> f64 {
    let clean = latency_clean_ms(device, arch);
    let noise = lognormal_jitter(
        combine(device.seed(), arch_hash(arch)),
        device.profile().noise_sigma,
    );
    clean * noise
}

/// Measures a batch of architectures on one device.
pub fn measure_all(device: &Device, archs: &[Arch]) -> Vec<f32> {
    archs.iter().map(|a| latency_ms(device, a) as f32).collect()
}

/// A precomputed `devices × architectures` latency matrix — the in-memory
/// analogue of the HW-NAS-Bench latency tables.
#[derive(Debug, Clone)]
pub struct LatencyTable {
    device_names: Vec<String>,
    /// `rows[d][a]` = latency of architecture `a` on device `d` (ms).
    rows: Vec<Vec<f32>>,
}

impl LatencyTable {
    /// Measures every architecture on every device.
    pub fn build(devices: &[Device], archs: &[Arch]) -> Self {
        let device_names = devices.iter().map(|d| d.name().to_string()).collect();
        let rows = devices.iter().map(|d| measure_all(d, archs)).collect();
        LatencyTable { device_names, rows }
    }

    /// Device names in row order.
    pub fn device_names(&self) -> &[String] {
        &self.device_names
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.rows.len()
    }

    /// Number of architectures.
    pub fn num_archs(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Latency vector of one device across all architectures.
    pub fn device_row(&self, device: &str) -> Option<&[f32]> {
        let idx = self.device_names.iter().position(|n| n == device)?;
        Some(&self.rows[idx])
    }

    /// Latency vector by row index.
    pub fn row(&self, idx: usize) -> &[f32] {
        &self.rows[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceRegistry;
    use nasflat_space::Space;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_archs(n: usize, seed: u64) -> Vec<Arch> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Arch::random(Space::Nb201, &mut rng))
            .collect()
    }

    #[test]
    fn latencies_positive_and_finite() {
        let reg = DeviceRegistry::nb201();
        let archs = sample_archs(20, 0);
        for d in reg.devices() {
            for a in &archs {
                let l = latency_ms(d, a);
                assert!(l.is_finite() && l > 0.0, "{} gave {l}", d.name());
            }
        }
    }

    #[test]
    fn latency_is_deterministic() {
        let reg = DeviceRegistry::nb201();
        let d = reg.get("pixel2").unwrap();
        let a = Arch::nb201_from_index(123);
        assert_eq!(latency_ms(d, &a), latency_ms(d, &a));
    }

    #[test]
    fn more_compute_is_slower_on_flops_bound_device() {
        let reg = DeviceRegistry::nb201();
        let d = reg.get("raspi4").unwrap();
        let all_conv = Arch::new(Space::Nb201, vec![3; 6]);
        let all_skip = Arch::new(Space::Nb201, vec![1; 6]);
        assert!(latency_clean_ms(d, &all_conv) > 2.0 * latency_clean_ms(d, &all_skip));
    }

    #[test]
    fn same_class_devices_correlate_more_than_cross_class() {
        use nasflat_metrics::spearman_rho;
        let reg = DeviceRegistry::nb201();
        let archs = sample_archs(200, 7);
        let lat = |name: &str| measure_all(reg.get(name).unwrap(), &archs);
        let a50 = lat("samsung_a50");
        let pixel3 = lat("pixel3");
        let etpu = lat("edge_tpu_int8");
        let intra = spearman_rho(&a50, &pixel3).unwrap();
        let cross = spearman_rho(&a50, &etpu).unwrap();
        assert!(intra > cross, "intra {intra} <= cross {cross}");
        assert!(
            intra > 0.85,
            "mobile CPUs should correlate highly, got {intra}"
        );
        assert!(
            cross < 0.75,
            "mCPU vs eTPU should correlate weakly, got {cross}"
        );
    }

    #[test]
    fn batch_one_gpu_decorrelates_from_large_batch() {
        use nasflat_metrics::spearman_rho;
        let reg = DeviceRegistry::nb201();
        let archs = sample_archs(200, 9);
        let b1 = measure_all(reg.get("1080ti_1").unwrap(), &archs);
        let b256 = measure_all(reg.get("1080ti_256").unwrap(), &archs);
        let other_b1 = measure_all(reg.get("titanxp_1").unwrap(), &archs);
        let same_batch = spearman_rho(&b1, &other_b1).unwrap();
        let cross_batch = spearman_rho(&b1, &b256).unwrap();
        assert!(
            same_batch > cross_batch,
            "same-batch {same_batch} should beat cross-batch {cross_batch}"
        );
    }

    #[test]
    fn latency_table_lookup() {
        let reg = DeviceRegistry::nb201();
        let archs = sample_archs(10, 3);
        let devs: Vec<_> = reg.devices()[..3].to_vec();
        let table = LatencyTable::build(&devs, &archs);
        assert_eq!(table.num_devices(), 3);
        assert_eq!(table.num_archs(), 10);
        let name = devs[1].name();
        assert_eq!(table.device_row(name).unwrap(), table.row(1));
        assert!(table.device_row("missing").is_none());
    }

    #[test]
    fn fbnet_latencies_work_too() {
        let reg = DeviceRegistry::fbnet();
        let mut rng = StdRng::seed_from_u64(11);
        let a = Arch::random(Space::Fbnet, &mut rng);
        for d in reg.devices() {
            let l = latency_ms(d, &a);
            assert!(l.is_finite() && l > 0.0);
        }
    }

    #[test]
    fn noise_is_small_relative_to_signal() {
        let reg = DeviceRegistry::nb201();
        let d = reg.get("fpga").unwrap();
        let a = Arch::nb201_from_index(4321);
        let clean = latency_clean_ms(d, &a);
        let noisy = latency_ms(d, &a);
        assert!((noisy / clean - 1.0).abs() < 0.25);
    }
}
