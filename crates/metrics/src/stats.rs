//! Summary statistics used by the benchmark harness tables.

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&v| v as f64).sum::<f64>() as f32 / xs.len() as f32
}

/// Population standard deviation; returns 0.0 for fewer than two elements.
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs) as f64;
    let var = xs.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64;
    (var.sqrt()) as f32
}

/// Geometric mean of strictly positive values, as used for the "GM" column
/// of Table 7. Non-positive entries are clamped to a small epsilon so a
/// single failed task cannot zero the aggregate.
pub fn geometric_mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&v| (v.max(1e-6) as f64).ln()).sum();
    (log_sum / xs.len() as f64).exp() as f32
}

/// A mean ± standard-deviation cell, formatted like the paper's tables
/// (`0.806` with a `0.038` subscript → rendered here as `0.806±0.038`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Mean across trials.
    pub mean: f32,
    /// Standard deviation across trials.
    pub std: f32,
}

impl MeanStd {
    /// Summarizes a slice of per-trial values.
    pub fn from_slice(xs: &[f32]) -> Self {
        MeanStd {
            mean: mean(xs),
            std: std_dev(xs),
        }
    }
}

impl core::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}±{:.3}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_matches_hand_value() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-5);
    }

    #[test]
    fn geometric_mean_clamps_nonpositive() {
        let g = geometric_mean(&[0.0, 1.0]);
        assert!(g > 0.0);
    }

    #[test]
    fn mean_std_display() {
        let ms = MeanStd::from_slice(&[0.8, 0.9]);
        let s = ms.to_string();
        assert!(s.contains("0.850"), "{s}");
        assert!(s.contains('±'), "{s}");
    }
}
