//! Table 6: cumulative design-choice ablation.
//!
//! Each row adds one feature and inherits everything above it:
//! baseline → +HWInit → +OpHW → +Sampler → +Supp. Encoding
//! (appendix A.2: ZCP/Arch2Vec supplements and CAZ/CATE samplers per space,
//! 20 transfer samples).

use nasflat_bench::{fmt_cell, print_table, rosters, Budget, Workbench};
use nasflat_core::FewShotConfig;
use nasflat_encode::EncodingKind;
use nasflat_sample::{Sampler, SelectionMethod};
use nasflat_space::Space;

fn configure(row: usize, base: &FewShotConfig, space: Space) -> FewShotConfig {
    let mut cfg = base.clone();
    cfg.predictor.op_hw = false;
    cfg.predictor.hw_init = false;
    cfg.predictor.supplement = None;
    cfg.sampler = Sampler::Random;
    if row >= 1 {
        cfg.predictor.hw_init = true;
    }
    if row >= 2 {
        cfg.predictor.op_hw = true;
    }
    if row >= 3 {
        cfg.sampler = match space {
            Space::Nb201 => Sampler::Encoding {
                kind: EncodingKind::Caz,
                method: SelectionMethod::Cosine,
            },
            Space::Fbnet => Sampler::Encoding {
                kind: EncodingKind::Cate,
                method: SelectionMethod::Cosine,
            },
        };
    }
    if row >= 4 {
        cfg.predictor.supplement = Some(match space {
            Space::Nb201 => EncodingKind::Zcp,
            Space::Fbnet => EncodingKind::Arch2Vec,
        });
    }
    cfg
}

fn main() {
    let budget = Budget::from_env();
    let labels = [
        "Baseline Predictor",
        "(+ HWInit)",
        "(+ OpHW)",
        "(+ Sampler)",
        "(+ Supp. Encoding)",
    ];
    let mut rows: Vec<Vec<String>> = labels.iter().map(|l| vec![l.to_string()]).collect();

    for name in rosters::CUMULATIVE {
        let wb = Workbench::new(name, &budget, true);
        let base = budget.fewshot(wb.task.space);
        for (row_idx, row) in rows.iter_mut().enumerate() {
            let cfg = configure(row_idx, &base, wb.task.space);
            row.push(fmt_cell(&wb.cell(&cfg, budget.trials)));
        }
        eprintln!("[table6] {name} done");
    }

    let mut header = vec!["Configuration"];
    header.extend(rosters::CUMULATIVE);
    print_table(
        "Table 6 — cumulative design-choice ablation (20 samples)",
        &header,
        &rows,
    );
}
