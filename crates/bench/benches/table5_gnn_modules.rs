//! Table 5: DGF vs GAT vs their ensemble as the main GNN module.
//!
//! Protocol (appendix A.2): random sampler, 20 transfer samples, no
//! supplementary encoding; eight tasks.

use nasflat_bench::{fmt_cell, print_table, rosters, Budget, Workbench};
use nasflat_core::GnnModuleKind;

fn main() {
    let budget = Budget::from_env();
    let modules = [
        GnnModuleKind::Dgf,
        GnnModuleKind::Gat,
        GnnModuleKind::Ensemble,
    ];
    let mut rows: Vec<Vec<String>> = modules
        .iter()
        .map(|m| vec![m.label().to_string()])
        .collect();

    for name in rosters::GNN {
        let wb = Workbench::new(name, &budget, false);
        for (module, row) in modules.iter().zip(rows.iter_mut()) {
            let mut cfg = budget.fewshot(wb.task.space);
            cfg.predictor = cfg.predictor.with_gnn(*module);
            cfg.predictor.supplement = None;
            row.push(fmt_cell(&wb.cell(&cfg, budget.trials)));
        }
        eprintln!("[table5] {name} done");
    }

    let mut header = vec!["GNN Module"];
    header.extend(rosters::GNN);
    print_table(
        "Table 5 — GNN module comparison (20 samples, random sampler)",
        &header,
        &rows,
    );
}
