//! FLOPs / parameter-count proxies — the earliest latency "predictors"
//! (Yu et al. 2020; paper §2.1 motivates why they are insufficient).

use nasflat_space::Arch;

/// Scores architectures by analytic FLOPs (no training, no measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct FlopsProxy;

impl FlopsProxy {
    /// Creates the proxy.
    pub fn new() -> Self {
        FlopsProxy
    }

    /// FLOPs of one architecture.
    pub fn score(&self, arch: &Arch) -> f32 {
        arch.cost_profile().total_flops as f32
    }

    /// FLOPs of pool architectures by index.
    pub fn score_indices(&self, pool: &[Arch], indices: &[usize]) -> Vec<f32> {
        indices.iter().map(|&i| self.score(&pool[i])).collect()
    }
}

/// Scores architectures by parameter count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParamsProxy;

impl ParamsProxy {
    /// Creates the proxy.
    pub fn new() -> Self {
        ParamsProxy
    }

    /// Parameter count of one architecture.
    pub fn score(&self, arch: &Arch) -> f32 {
        arch.cost_profile().total_params as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasflat_metrics::spearman_rho;
    use nasflat_space::Space;

    #[test]
    fn flops_ranks_conv_above_skip() {
        let p = FlopsProxy::new();
        let conv = Arch::new(Space::Nb201, vec![3; 6]);
        let skip = Arch::new(Space::Nb201, vec![1; 6]);
        assert!(p.score(&conv) > p.score(&skip));
    }

    #[test]
    fn flops_correlates_with_compute_bound_device_but_not_perfectly() {
        use nasflat_hw::{measure_all, DeviceRegistry};
        let pool: Vec<Arch> = (0..150u64)
            .map(|i| Arch::nb201_from_index(i * 104))
            .collect();
        let reg = DeviceRegistry::nb201();
        let raspi = measure_all(reg.get("raspi4").unwrap(), &pool);
        let flops: Vec<f32> = pool.iter().map(|a| FlopsProxy::new().score(a)).collect();
        let rho = spearman_rho(&flops, &raspi).unwrap();
        assert!(
            rho > 0.7,
            "flops should track a compute-bound eCPU, got {rho}"
        );
        // but on a batch-1 GPU the overhead term dominates and flops is weaker
        let gpu = measure_all(reg.get("1080ti_1").unwrap(), &pool);
        let rho_gpu = spearman_rho(&flops, &gpu).unwrap();
        assert!(rho_gpu < rho, "flops proxy should degrade on batch-1 GPU");
    }

    #[test]
    fn params_proxy_scores() {
        let p = ParamsProxy::new();
        let conv = Arch::new(Space::Nb201, vec![3; 6]);
        let pool_op = Arch::new(Space::Nb201, vec![4; 6]);
        assert!(p.score(&conv) > p.score(&pool_op));
        assert_eq!(p.score(&pool_op), 0.0);
    }
}
