//! Lock-cheap, deterministic serving telemetry: fixed-bucket histograms,
//! gauges, and a bounded request-trace ring.
//!
//! The serving path must stay **bit-invisible** under observation: nothing
//! here touches a float on the hot path, takes a lock a request waits on,
//! or changes which queries share a tape pass. Every primitive is a plain
//! [`AtomicU64`] updated with `Relaxed` fetch-adds:
//!
//! - [`Histogram`]: power-of-two (log2) buckets over integer microsecond
//!   latencies or integer sizes. Bucket `i` holds observations
//!   `≤ 2^i` (the last bucket is `+Inf`), so recording is two shifts and
//!   three atomic adds — no float math, no allocation, no lock.
//! - [`Gauge`]: a saturating up/down counter for live quantities (queue
//!   depth is read straight off the queue; inflight slots go through
//!   here).
//! - [`Telemetry`]: the per-server bundle of every per-stage histogram
//!   (queue wait, batch assembly, tape evaluation, response write),
//!   the batch/group size histograms, the uniform-vs-ragged pass counters
//!   aggregated from [`SessionCounters`], and the trace ring.
//! - [`RequestTrace`]: one admitted request's lifecycle timestamps
//!   (admission → dequeue → evaluation → reply, µs from the server's
//!   epoch) plus its deadline verdict, kept in a bounded ring
//!   ([`Telemetry::traces`] dumps it on demand).
//!
//! The whole layer can be disabled ([`Telemetry::disabled`], or
//! `telemetry(false)` on the config builder): every record call
//! early-returns, which is what the `telemetry_overhead` bench entry
//! compares against to pin the enabled path overhead-neutral.
//!
//! Rendering is Prometheus-style text exposition: histograms emit
//! cumulative `_bucket{le="..."}` samples plus `_sum`/`_count`, counters
//! emit `_total` samples. The ingress assembles the full page (its ledger,
//! the registry counters, queue-depth gauge) around
//! [`Telemetry::render_into`] and serves it through the `METRICS` wire op.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nasflat_core::SessionCounters;

/// Number of histogram buckets: upper bounds `2^0 .. 2^26` (≈ 67 s in
/// microseconds) plus a final `+Inf` overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A fixed-bucket log2 histogram over `u64` observations.
///
/// Bucket `i < HISTOGRAM_BUCKETS - 1` counts observations `v ≤ 2^i`; the
/// last bucket counts everything larger. All counters are relaxed atomics —
/// recording never locks, never allocates, and never touches a float.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index of observation `v`: the smallest `i` with
    /// `v ≤ 2^i`, capped at the overflow bucket.
    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v ≥ 2: bits needed to represent v - 1.
        let idx = (64 - (v - 1).leading_zeros()) as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation (three relaxed atomic adds).
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters (per-bucket counts are
    /// non-cumulative; [`HistogramSnapshot::cumulative`] converts).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    /// Renders the histogram as a Prometheus text-exposition family:
    /// cumulative `_bucket{le="..."}` samples, then `_sum` and `_count`.
    /// Empty buckets above the last occupied one are elided (except
    /// `+Inf`, which is always present).
    pub fn render_into(&self, out: &mut String, name: &str) {
        let snap = self.snapshot();
        let _ = writeln!(out, "# TYPE {name} histogram");
        let last_occupied = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(0)
            .min(HISTOGRAM_BUCKETS - 2);
        let mut cum = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate().take(last_occupied + 1) {
            cum += c;
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", 1u64 << i);
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "{name}_sum {}", snap.sum);
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
}

/// A point-in-time [`Histogram`] copy: per-bucket (non-cumulative) counts
/// plus the running sum and total count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; bucket `i` covers
    /// `(2^(i-1), 2^i]` (bucket 0 covers `0..=1`), the last bucket is
    /// the `+Inf` overflow.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of every observed value.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The cumulative bucket counts (Prometheus `le` semantics): entry `i`
    /// is the number of observations `≤ 2^i`; the last entry equals
    /// [`HistogramSnapshot::count`].
    pub fn cumulative(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        let mut cum = 0u64;
        for (o, &b) in out.iter_mut().zip(&self.buckets) {
            cum += b;
            *o = cum;
        }
        out
    }
}

/// A saturating live-quantity gauge (relaxed atomics; decrements clamp at
/// zero instead of wrapping).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Increments the gauge.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the gauge, clamping at zero.
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// How a deadline-bound request's budget resolved (best-effort requests
/// carry [`DeadlineVerdict::BestEffort`] for their whole life).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// No deadline on the request.
    BestEffort,
    /// Evaluated and answered within the budget.
    Met,
    /// Evaluated, but the answer landed after the budget (the client still
    /// got its score).
    Missed,
    /// Already overdue at dequeue — answered
    /// [`ServeError::DeadlineExceeded`](crate::ServeError::DeadlineExceeded)
    /// without evaluation.
    Expired,
}

impl core::fmt::Display for DeadlineVerdict {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            DeadlineVerdict::BestEffort => "best-effort",
            DeadlineVerdict::Met => "met",
            DeadlineVerdict::Missed => "missed",
            DeadlineVerdict::Expired => "expired",
        })
    }
}

/// One admitted request's lifecycle record: where its latency went, stage
/// by stage. Timestamps are microseconds from the server's telemetry
/// epoch; `0` marks a stage the request never reached (an expired request
/// has no `evaluated_us`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Client-chosen request id (unique per connection, not globally).
    pub request_id: u64,
    /// Registry name of the model the request targeted.
    pub model: String,
    /// When the request was admitted to the global queue.
    pub admitted_us: u64,
    /// When a scheduler worker dequeued it.
    pub dequeued_us: u64,
    /// When its tape pass finished (`0` for expired requests).
    pub evaluated_us: u64,
    /// When its reply frame was written back (`0` until the writer ran).
    pub replied_us: u64,
    /// The deadline verdict.
    pub verdict: DeadlineVerdict,
}

/// The per-server telemetry bundle: per-stage latency histograms, size
/// histograms, pass-shape counters, the inflight gauge, and the bounded
/// request-trace ring. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    epoch: Instant,
    /// Queue wait: admission → dequeue, µs (live and expired entries).
    queue_wait_us: Histogram,
    /// Batch assembly: dequeue → tape-pass start, µs (per model group).
    assembly_us: Histogram,
    /// Tape evaluation: the multi-query forward pass, µs (per model group).
    eval_us: Histogram,
    /// Response write: one reply frame onto the socket, µs.
    write_us: Histogram,
    /// Live entries per scheduler drain.
    batch_size: Histogram,
    /// Queries per same-model tape group.
    group_size: Histogram,
    uniform_passes: AtomicU64,
    ragged_passes: AtomicU64,
    per_arch_queries: AtomicU64,
    inflight: Gauge,
    trace_capacity: usize,
    traces: Mutex<VecDeque<RequestTrace>>,
}

impl Telemetry {
    /// An enabled telemetry bundle whose trace ring holds up to
    /// `trace_capacity` records (0 disables tracing but keeps the
    /// histograms).
    pub fn new(trace_capacity: usize) -> Self {
        Telemetry {
            enabled: true,
            epoch: Instant::now(),
            queue_wait_us: Histogram::new(),
            assembly_us: Histogram::new(),
            eval_us: Histogram::new(),
            write_us: Histogram::new(),
            batch_size: Histogram::new(),
            group_size: Histogram::new(),
            uniform_passes: AtomicU64::new(0),
            ragged_passes: AtomicU64::new(0),
            per_arch_queries: AtomicU64::new(0),
            inflight: Gauge::new(),
            trace_capacity,
            traces: Mutex::new(VecDeque::new()),
        }
    }

    /// A disabled bundle: every record call early-returns, every snapshot
    /// is empty. The `telemetry_overhead` bench baseline serves through
    /// this.
    pub fn disabled() -> Self {
        Telemetry {
            enabled: false,
            ..Telemetry::new(0)
        }
    }

    /// Whether recording is live.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Microseconds elapsed since the bundle was created — the timestamp
    /// base of every [`RequestTrace`].
    pub fn now_us(&self) -> u64 {
        self.us_at(Instant::now())
    }

    /// Microseconds from the telemetry epoch to `t` (saturating to 0 when
    /// `t` predates the epoch).
    pub fn us_at(&self, t: Instant) -> u64 {
        t.duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64
    }

    /// Records one queue wait (admission → dequeue), µs.
    pub fn observe_queue_wait(&self, us: u64) {
        if self.enabled {
            self.queue_wait_us.observe(us);
        }
    }

    /// Records one batch-assembly span (dequeue → tape-pass start), µs.
    pub fn observe_assembly(&self, us: u64) {
        if self.enabled {
            self.assembly_us.observe(us);
        }
    }

    /// Records one tape-evaluation span, µs.
    pub fn observe_eval(&self, us: u64) {
        if self.enabled {
            self.eval_us.observe(us);
        }
    }

    /// Records one response-write span, µs.
    pub fn observe_write(&self, us: u64) {
        if self.enabled {
            self.write_us.observe(us);
        }
    }

    /// Records the live size of one scheduler drain.
    pub fn observe_batch_size(&self, n: u64) {
        if self.enabled {
            self.batch_size.observe(n);
        }
    }

    /// Records the size of one same-model tape group.
    pub fn observe_group_size(&self, n: u64) {
        if self.enabled {
            self.group_size.observe(n);
        }
    }

    /// Aggregates a worker's [`SessionCounters`] delta into the
    /// uniform/ragged/per-arch pass counters.
    pub fn add_sessions(&self, c: &SessionCounters) {
        if !self.enabled {
            return;
        }
        let [uniform, ragged, per_arch] = c.export_u64();
        self.uniform_passes.fetch_add(uniform, Ordering::Relaxed);
        self.ragged_passes.fetch_add(ragged, Ordering::Relaxed);
        self.per_arch_queries.fetch_add(per_arch, Ordering::Relaxed);
    }

    /// The inflight-slot gauge (admitted, unanswered requests).
    pub fn inflight(&self) -> &Gauge {
        &self.inflight
    }

    /// Pushes one request trace, evicting the oldest past capacity.
    pub fn push_trace(&self, trace: RequestTrace) {
        if !self.enabled || self.trace_capacity == 0 {
            return;
        }
        let mut ring = self.traces.lock().expect("trace ring lock");
        if ring.len() >= self.trace_capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Dumps the trace ring, oldest first.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.traces
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Snapshot of the queue-wait histogram.
    pub fn queue_wait(&self) -> HistogramSnapshot {
        self.queue_wait_us.snapshot()
    }

    /// Snapshot of the batch-assembly histogram.
    pub fn assembly(&self) -> HistogramSnapshot {
        self.assembly_us.snapshot()
    }

    /// Snapshot of the tape-evaluation histogram.
    pub fn eval(&self) -> HistogramSnapshot {
        self.eval_us.snapshot()
    }

    /// Snapshot of the response-write histogram.
    pub fn write(&self) -> HistogramSnapshot {
        self.write_us.snapshot()
    }

    /// Snapshot of the drain-size histogram.
    pub fn batch_sizes(&self) -> HistogramSnapshot {
        self.batch_size.snapshot()
    }

    /// Snapshot of the same-model group-size histogram.
    pub fn group_sizes(&self) -> HistogramSnapshot {
        self.group_size.snapshot()
    }

    /// The `(uniform, ragged, per_arch)` pass counters.
    pub fn session_totals(&self) -> (u64, u64, u64) {
        (
            self.uniform_passes.load(Ordering::Relaxed),
            self.ragged_passes.load(Ordering::Relaxed),
            self.per_arch_queries.load(Ordering::Relaxed),
        )
    }

    /// Renders this bundle's families (the per-stage and size histograms,
    /// the pass counters, the inflight gauge) into `out` as Prometheus
    /// text exposition. The ingress wraps this with its ledger, the
    /// registry counters, and the live queue-depth gauge to form the full
    /// `METRICS` page.
    pub fn render_into(&self, out: &mut String) {
        self.queue_wait_us.render_into(out, "nasflat_queue_wait_us");
        self.assembly_us
            .render_into(out, "nasflat_batch_assembly_us");
        self.eval_us.render_into(out, "nasflat_tape_eval_us");
        self.write_us.render_into(out, "nasflat_response_write_us");
        self.batch_size.render_into(out, "nasflat_batch_size");
        self.group_size.render_into(out, "nasflat_group_size");
        let (uniform, ragged, per_arch) = self.session_totals();
        render_counter(out, "nasflat_uniform_passes_total", uniform);
        render_counter(out, "nasflat_ragged_passes_total", ragged);
        render_counter(out, "nasflat_per_arch_queries_total", per_arch);
        render_gauge(out, "nasflat_inflight", self.inflight.get());
    }
}

/// Appends one `# TYPE ... counter` family with a single sample.
pub(crate) fn render_counter(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one `# TYPE ... gauge` family with a single sample.
pub(crate) fn render_gauge(out: &mut String, name: &str, value: u64) {
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one labelled counter sample (caller emits the `# TYPE` line
/// once per family).
pub(crate) fn render_labelled(out: &mut String, name: &str, label: &str, key: &str, value: u64) {
    // Label values are registry model names; escape the three characters
    // the exposition format reserves.
    let mut escaped = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '\\' => escaped.push_str("\\\\"),
            '"' => escaped.push_str("\\\""),
            '\n' => escaped.push_str("\\n"),
            c => escaped.push(c),
        }
    }
    let _ = writeln!(out, "{name}{{{label}=\"{escaped}\"}} {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // v ≤ 2^i lands in bucket i; 2^i + 1 lands in bucket i + 1.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(Histogram::bucket_of(1u64 << i), i, "2^{i} in bucket {i}");
            assert_eq!(Histogram::bucket_of((1u64 << i) + 1), i + 1);
        }
        // Everything past the last finite bound overflows to +Inf.
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_sum_count_and_cumulative_agree() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 16, 17, 1 << 20, u64::MAX / 2] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1 + 2 + 16 + 17 + (1 << 20) + u64::MAX / 2);
        let cum = snap.cumulative();
        assert_eq!(cum[HISTOGRAM_BUCKETS - 1], snap.count);
        // Cumulative counts are monotone.
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        // le="1" covers the two observations ≤ 1.
        assert_eq!(cum[0], 2);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // extra decrement clamps instead of wrapping
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::disabled();
        t.observe_queue_wait(5);
        t.observe_eval(5);
        t.observe_batch_size(3);
        t.add_sessions(&SessionCounters {
            uniform_passes: 4,
            ragged_passes: 2,
            per_arch_queries: 1,
        });
        t.push_trace(RequestTrace {
            request_id: 1,
            model: "m".into(),
            admitted_us: 1,
            dequeued_us: 2,
            evaluated_us: 3,
            replied_us: 4,
            verdict: DeadlineVerdict::BestEffort,
        });
        assert_eq!(t.queue_wait().count, 0);
        assert_eq!(t.eval().count, 0);
        assert_eq!(t.session_totals(), (0, 0, 0));
        assert!(t.traces().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn trace_ring_is_bounded_and_fifo() {
        let t = Telemetry::new(3);
        for i in 0..5u64 {
            t.push_trace(RequestTrace {
                request_id: i,
                model: "m".into(),
                admitted_us: i,
                dequeued_us: i,
                evaluated_us: i,
                replied_us: i,
                verdict: DeadlineVerdict::Met,
            });
        }
        let traces = t.traces();
        assert_eq!(traces.len(), 3, "ring bounded at capacity");
        let ids: Vec<u64> = traces.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, [2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn rendered_exposition_is_well_formed() {
        let t = Telemetry::new(4);
        t.observe_queue_wait(100);
        t.observe_eval(1 << 24);
        t.inflight().inc();
        let mut out = String::new();
        t.render_into(&mut out);
        assert!(out.contains("# TYPE nasflat_queue_wait_us histogram"));
        assert!(out.contains("nasflat_queue_wait_us_bucket{le=\"128\"} 1"));
        assert!(out.contains("nasflat_queue_wait_us_bucket{le=\"+Inf\"} 1"));
        assert!(out.contains("nasflat_queue_wait_us_sum 100"));
        assert!(out.contains("nasflat_queue_wait_us_count 1"));
        assert!(out.contains("nasflat_tape_eval_us_count 1"));
        assert!(out.contains("nasflat_inflight 1"));
        // Every sample line is "name{labels} value" or "name value" with an
        // integer value — no floats anywhere in the exposition.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(
                value.parse::<u64>().is_ok(),
                "non-integer sample in {line:?}"
            );
        }
    }

    #[test]
    fn labelled_counter_escapes_model_names() {
        let mut out = String::new();
        render_labelled(
            &mut out,
            "nasflat_model_served_total",
            "model",
            "a\"b\\c",
            7,
        );
        assert_eq!(out, "nasflat_model_served_total{model=\"a\\\"b\\\\c\"} 7\n");
    }
}
