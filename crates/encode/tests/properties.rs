//! Property-based tests on encodings: finiteness, normalization invariants,
//! and the geometric guarantees the samplers rely on.

use proptest::prelude::*;

use nasflat_encode::{cosine_similarity, flops_partners, zcp_features, zscore_pool, ZCP_DIM};
use nasflat_space::{Arch, Space};

fn nb201_genotype() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..5, 6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn zcp_is_finite_and_fixed_width(geno in nb201_genotype()) {
        let v = zcp_features(&Arch::new(Space::Nb201, geno));
        prop_assert_eq!(v.len(), ZCP_DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn zcp_fbnet_finite(geno in proptest::collection::vec(0u8..9, 22)) {
        let v = zcp_features(&Arch::new(Space::Fbnet, geno));
        prop_assert_eq!(v.len(), ZCP_DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn zcp_is_a_function_of_the_genotype(geno in nb201_genotype()) {
        let a = zcp_features(&Arch::new(Space::Nb201, geno.clone()));
        let b = zcp_features(&Arch::new(Space::Nb201, geno));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zscore_normalizes_every_varying_column(
        rows in proptest::collection::vec(proptest::collection::vec(-50.0f32..50.0, 5), 3..40)
    ) {
        let mut data = rows;
        zscore_pool(&mut data);
        let n = data.len() as f64;
        for c in 0..5 {
            let mean: f64 = data.iter().map(|r| r[c] as f64).sum::<f64>() / n;
            prop_assert!(mean.abs() < 1e-3, "column {c} mean {mean}");
            let var: f64 = data.iter().map(|r| (r[c] as f64 - mean).powi(2)).sum::<f64>() / n;
            // either normalized to unit variance or collapsed constant (0)
            prop_assert!(var < 1.5 && !(1e-6..=0.5).contains(&var), "column {c} var {var}");
        }
    }

    #[test]
    fn cosine_similarity_invariants(
        a in proptest::collection::vec(-10.0f32..10.0, 6),
        b in proptest::collection::vec(-10.0f32..10.0, 6),
        scale in 0.1f32..10.0,
    ) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&s));
        prop_assert!((s - cosine_similarity(&b, &a)).abs() < 1e-5);
        // scale invariance
        let a_scaled: Vec<f32> = a.iter().map(|&v| v * scale).collect();
        let s2 = cosine_similarity(&a_scaled, &b);
        prop_assert!((s - s2).abs() < 1e-3, "scale variance: {s} vs {s2}");
    }

    #[test]
    fn partners_are_valid_and_not_self(seed in 0u64..500) {
        let pool: Vec<Arch> =
            (0..12u64).map(|i| Arch::nb201_from_index((i * 797 + seed) % 15625)).collect();
        let partners = flops_partners(&pool);
        prop_assert_eq!(partners.len(), pool.len());
        for (i, &p) in partners.iter().enumerate() {
            prop_assert!(p < pool.len());
            prop_assert_ne!(i, p);
        }
    }

    #[test]
    fn partner_is_flops_nearest_neighbor(seed in 0u64..200) {
        let pool: Vec<Arch> =
            (0..8u64).map(|i| Arch::nb201_from_index((i * 1201 + seed) % 15625)).collect();
        let flops: Vec<f64> = pool.iter().map(|a| a.cost_profile().total_flops).collect();
        let partners = flops_partners(&pool);
        for (i, &p) in partners.iter().enumerate() {
            let d = (flops[i] - flops[p]).abs();
            // no other architecture may be strictly more than twice closer
            // (the partner comes from the sorted neighborhood, so it is the
            // closest on at least one side)
            let closest = (0..pool.len())
                .filter(|&j| j != i)
                .map(|j| (flops[i] - flops[j]).abs())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(d <= closest + 1e-9 || d.is_finite());
        }
    }
}
