//! Unified architecture representation across both search spaces.

use rand::Rng;

use crate::cost::CostProfile;
use crate::fbnet;
use crate::graph::ArchGraph;
use crate::nb201;

/// Which NAS benchmark space an architecture belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// NASBench-201 micro cell space (5^6 = 15 625 architectures).
    Nb201,
    /// FBNet macro space (9 blocks × 22 positions).
    Fbnet,
}

impl Space {
    /// Number of searchable choices per slot (5 edge ops / 9 blocks).
    pub fn num_ops(self) -> usize {
        match self {
            Space::Nb201 => nb201::NB201_OPS.len(),
            Space::Fbnet => fbnet::FBNET_BLOCKS.len(),
        }
    }

    /// Genotype length (6 edges / 22 positions).
    pub fn genotype_len(self) -> usize {
        match self {
            Space::Nb201 => nb201::NB201_EDGES.len(),
            Space::Fbnet => fbnet::FBNET_POSITIONS,
        }
    }

    /// Size of the GNN operation vocabulary: the space's ops plus the
    /// special `INPUT` and `OUTPUT` tokens.
    pub fn vocab_size(self) -> usize {
        self.num_ops() + 2
    }

    /// Number of nodes in the line-graph form ([`ArchGraph`]).
    pub fn graph_nodes(self) -> usize {
        self.genotype_len() + 2
    }

    /// Human-readable operation names indexed by genotype value.
    pub fn op_names(self) -> &'static [&'static str] {
        match self {
            Space::Nb201 => nb201::NB201_OPS,
            Space::Fbnet => fbnet::FBNET_BLOCKS,
        }
    }

    /// Total number of unique architectures (`None` for FBNet, which is
    /// astronomically large and handled through a sampled pool).
    pub fn num_archs(self) -> Option<u64> {
        match self {
            Space::Nb201 => Some(nb201::NB201_NUM_ARCHS),
            Space::Fbnet => None,
        }
    }

    /// Short display name used in table headers.
    pub fn short_name(self) -> &'static str {
        match self {
            Space::Nb201 => "NB201",
            Space::Fbnet => "FBNet",
        }
    }

    /// Stable single-byte identifier used by every on-disk and on-wire
    /// format (the `NFP1` predictor envelope, the `NFB1` bundle, the serving
    /// layer's ingress frames). Codes are append-only: existing values never
    /// change meaning.
    pub fn wire_code(self) -> u8 {
        match self {
            Space::Nb201 => 0,
            Space::Fbnet => 1,
        }
    }

    /// Inverse of [`Space::wire_code`]; `None` for unknown codes (a newer
    /// format, or corruption).
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Space::Nb201,
            1 => Space::Fbnet,
            _ => return None,
        })
    }
}

/// A single architecture: a genotype of op choices in one [`Space`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Arch {
    space: Space,
    genotype: Vec<u8>,
}

impl Arch {
    /// Builds an architecture from a genotype.
    ///
    /// # Panics
    /// Panics if the genotype length or any op id is out of range for the
    /// space.
    pub fn new(space: Space, genotype: Vec<u8>) -> Self {
        Arch::try_new(space, genotype).expect("genotype length or op id out of range")
    }

    /// Fallible [`Arch::new`] for untrusted genotypes (file formats, the
    /// serving wire protocol): `None` when the length or any op id is out
    /// of range for the space, instead of panicking.
    pub fn try_new(space: Space, genotype: Vec<u8>) -> Option<Self> {
        let num_ops = space.num_ops() as u8;
        if genotype.len() != space.genotype_len() || genotype.iter().any(|&g| g >= num_ops) {
            return None;
        }
        Some(Arch { space, genotype })
    }

    /// Decodes the NB201 architecture with the given index (base-5 digits of
    /// `index` are the edge ops).
    ///
    /// # Panics
    /// Panics if `index >= 15625`.
    pub fn nb201_from_index(index: u64) -> Self {
        assert!(index < nb201::NB201_NUM_ARCHS, "NB201 index out of range");
        let mut genotype = vec![0u8; nb201::NB201_EDGES.len()];
        let mut rest = index;
        for slot in genotype.iter_mut() {
            *slot = (rest % 5) as u8;
            rest /= 5;
        }
        Arch {
            space: Space::Nb201,
            genotype,
        }
    }

    /// The NB201 index of this architecture (inverse of
    /// [`Arch::nb201_from_index`]).
    ///
    /// # Panics
    /// Panics when called on an FBNet architecture.
    pub fn nb201_index(&self) -> u64 {
        assert_eq!(self.space, Space::Nb201, "nb201_index on non-NB201 arch");
        self.genotype
            .iter()
            .rev()
            .fold(0u64, |acc, &g| acc * 5 + g as u64)
    }

    /// Uniform random architecture.
    pub fn random<R: Rng>(space: Space, rng: &mut R) -> Self {
        let genotype = (0..space.genotype_len())
            .map(|_| rng.random_range(0..space.num_ops()) as u8)
            .collect();
        Arch { space, genotype }
    }

    /// The space this architecture belongs to.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Op choice per edge/position.
    pub fn genotype(&self) -> &[u8] {
        &self.genotype
    }

    /// Converts to the operation-on-nodes DAG used by GNN predictors.
    pub fn to_graph(&self) -> ArchGraph {
        match self.space {
            Space::Nb201 => nb201::to_graph(&self.genotype),
            Space::Fbnet => fbnet::to_graph(&self.genotype),
        }
    }

    /// Analytic FLOPs / parameter / activation-memory profile.
    pub fn cost_profile(&self) -> CostProfile {
        match self.space {
            Space::Nb201 => nb201::cost_profile(&self.genotype),
            Space::Fbnet => fbnet::cost_profile(&self.genotype),
        }
    }

    /// The flattened adjacency + one-hot-operation encoding ("AdjOp",
    /// White et al. 2020) used as the predictor's base representation and by
    /// the Arch2Vec autoencoder.
    pub fn adjop_encoding(&self) -> Vec<f32> {
        let g = self.to_graph();
        let n = g.num_nodes();
        let vocab = self.space.vocab_size();
        let mut enc = Vec::with_capacity(n * n + n * vocab);
        for i in 0..n {
            for j in 0..n {
                enc.push(g.adj(i, j));
            }
        }
        for i in 0..n {
            let mut onehot = vec![0.0f32; vocab];
            onehot[g.ops()[i]] = 1.0;
            enc.extend_from_slice(&onehot);
        }
        enc
    }

    /// Iterator over every NB201 architecture in index order.
    pub fn nb201_enumerate() -> impl Iterator<Item = Arch> {
        (0..nb201::NB201_NUM_ARCHS).map(Arch::nb201_from_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nb201_index_round_trip() {
        for idx in [0u64, 1, 5, 624, 15624, 9431] {
            let a = Arch::nb201_from_index(idx);
            assert_eq!(a.nb201_index(), idx);
        }
    }

    #[test]
    #[should_panic(expected = "NB201 index out of range")]
    fn nb201_index_bounds() {
        let _ = Arch::nb201_from_index(15625);
    }

    #[test]
    fn random_archs_are_valid() {
        let mut rng = StdRng::seed_from_u64(3);
        for space in [Space::Nb201, Space::Fbnet] {
            let a = Arch::random(space, &mut rng);
            assert_eq!(a.genotype().len(), space.genotype_len());
            assert!(a.genotype().iter().all(|&g| (g as usize) < space.num_ops()));
        }
    }

    #[test]
    fn vocab_and_node_counts() {
        assert_eq!(Space::Nb201.vocab_size(), 7);
        assert_eq!(Space::Fbnet.vocab_size(), 11);
        assert_eq!(Space::Nb201.graph_nodes(), 8);
        assert_eq!(Space::Fbnet.graph_nodes(), 24);
    }

    #[test]
    fn adjop_encoding_length() {
        let a = Arch::nb201_from_index(0);
        let n = 8;
        assert_eq!(a.adjop_encoding().len(), n * n + n * 7);
    }

    #[test]
    fn enumerate_covers_space() {
        assert_eq!(Arch::nb201_enumerate().count() as u64, NB201_NUM_ARCHS);
    }

    use crate::nb201::NB201_NUM_ARCHS;
}
