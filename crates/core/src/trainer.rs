//! Pre-training, transfer, and evaluation of the latency predictor
//! (paper §3.4, §5.2, §6.2).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nasflat_encode::EncodingSuite;
use nasflat_hw::LatencyTable;
use nasflat_metrics::spearman_rho;
use nasflat_space::Arch;
use nasflat_tensor::{mse_loss, pairwise_hinge_loss, AdamConfig, Graph};

use crate::config::{LossKind, PredictorConfig};
use crate::data::{DeviceSamples, PretrainData};
use crate::predictor::LatencyPredictor;

/// Shared references the trainer needs: the architecture pool and (when a
/// supplementary encoding is configured) the encoding suite over that pool.
#[derive(Debug, Clone, Copy)]
pub struct TrainContext<'a> {
    /// The architecture pool; sample indices refer into this.
    pub pool: &'a [Arch],
    /// Encodings over the pool (required iff the config sets a supplement).
    pub suite: Option<&'a EncodingSuite>,
}

impl<'a> TrainContext<'a> {
    /// Context without supplementary encodings.
    pub fn new(pool: &'a [Arch]) -> Self {
        TrainContext { pool, suite: None }
    }

    /// Context with an encoding suite.
    pub fn with_suite(pool: &'a [Arch], suite: &'a EncodingSuite) -> Self {
        TrainContext {
            pool,
            suite: Some(suite),
        }
    }

    /// The supplementary vector for a pool architecture, per config.
    ///
    /// # Panics
    /// Panics if the config requires a supplement but no suite is attached.
    pub fn supplement(&self, cfg: &PredictorConfig, arch_idx: usize) -> Option<Vec<f32>> {
        cfg.supplement.map(|kind| {
            let suite = self
                .suite
                .expect("config sets a supplement but context has no suite");
            suite.rows(kind)[arch_idx].clone()
        })
    }

    /// Width the predictor's head must reserve for the supplement.
    pub fn supp_dim(&self, cfg: &PredictorConfig) -> usize {
        match cfg.supplement {
            Some(kind) => self
                .suite
                .expect("config sets a supplement but context has no suite")
                .dim(kind),
            None => 0,
        }
    }
}

/// One gradient step on a batch of `(arch index, normalized target)` pairs
/// for a single device. Returns the batch loss (`None` when the ranking loss
/// had no comparable pairs and the step was skipped).
///
/// Builds each step on a fresh tape; the epoch loops ([`pretrain`],
/// [`fine_tune`]) use [`train_step_on`] with one reused tape instead.
pub fn train_step(
    pred: &mut LatencyPredictor,
    ctx: &TrainContext<'_>,
    device: usize,
    batch: &[(usize, f32)],
    adam: &AdamConfig,
) -> Option<f32> {
    let mut g = Graph::new();
    train_step_on(pred, ctx, device, batch, adam, &mut g)
}

/// [`train_step`] on a caller-owned tape: the tape is cleared (arenas
/// retained) before the forward pass, so per-step graph construction stops
/// allocating once the first step has sized the buffers. Bit-identical to
/// building every step on a fresh tape.
pub fn train_step_on(
    pred: &mut LatencyPredictor,
    ctx: &TrainContext<'_>,
    device: usize,
    batch: &[(usize, f32)],
    adam: &AdamConfig,
    g: &mut Graph,
) -> Option<f32> {
    if batch.is_empty() {
        return None;
    }
    let cfg = pred.config().clone();
    pred.store.zero_grads();
    g.clear();
    let mut scores = Vec::with_capacity(batch.len());
    let mut targets = Vec::with_capacity(batch.len());
    for &(idx, t) in batch {
        let supp = ctx.supplement(&cfg, idx);
        let y = pred.forward(g, &ctx.pool[idx], device, supp.as_deref());
        scores.push(y);
        targets.push(t);
    }
    let loss = match cfg.loss {
        LossKind::PairwiseHinge => pairwise_hinge_loss(g, &scores, &targets, cfg.hinge_margin)?,
        LossKind::Mse => mse_loss(g, &scores, &targets),
    };
    let value = g.value(loss).item();
    g.backward(loss);
    g.write_grads(&mut pred.store);
    pred.store.clip_grad_norm(cfg.grad_clip);
    pred.store.adam_step(adam);
    Some(value)
}

/// Pre-trains on all source devices of a task (paper §3.4: conventional
/// multi-device training with per-device ranking batches).
pub fn pretrain(pred: &mut LatencyPredictor, ctx: &TrainContext<'_>, data: &PretrainData) {
    let cfg = pred.config().clone();
    let adam = AdamConfig {
        lr: cfg.lr,
        weight_decay: cfg.weight_decay,
        ..AdamConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x51ED_1234);
    let mut g = Graph::new(); // one tape for the whole pre-training
    for _ in 0..cfg.epochs {
        let mut device_order: Vec<usize> = (0..data.devices.len()).collect();
        device_order.shuffle(&mut rng);
        for &d in &device_order {
            let ds: &DeviceSamples = &data.devices[d];
            let mut samples = ds.samples.clone();
            samples.shuffle(&mut rng);
            for batch in samples.chunks(cfg.batch_size) {
                train_step_on(pred, ctx, ds.device, batch, &adam, &mut g);
            }
        }
    }
}

/// Fine-tunes on the target device's few samples with a re-initialized
/// learning schedule (paper §3.4 / MultiPredict-style transfer).
pub fn fine_tune(
    pred: &mut LatencyPredictor,
    ctx: &TrainContext<'_>,
    device: usize,
    samples: &DeviceSamples,
) {
    let cfg = pred.config().clone();
    pred.store.reset_optimizer_state();
    let adam = AdamConfig {
        lr: cfg.transfer_lr,
        weight_decay: cfg.weight_decay,
        ..AdamConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17E_704E ^ device as u64);
    let mut g = Graph::new(); // one tape for the whole fine-tuning
    for _ in 0..cfg.transfer_epochs {
        let mut order = samples.samples.clone();
        order.shuffle(&mut rng);
        for batch in order.chunks(cfg.batch_size) {
            train_step_on(pred, ctx, device, batch, &adam, &mut g);
        }
    }
}

/// Hardware-embedding initialization (§5.2): rank-correlates the target's
/// few measured latencies against each *source* device's latencies on the
/// same architectures and copies the best-matching source's embedding row.
///
/// Returns the chosen source index (`None` if no correlation was computable,
/// in which case the embedding is left at its random initialization).
pub fn hw_init_from_correlation(
    pred: &mut LatencyPredictor,
    target_device: usize,
    transfer_raw: &[(usize, f32)],
    table: &LatencyTable,
    source_names: &[String],
) -> Option<usize> {
    let target_lat: Vec<f32> = transfer_raw.iter().map(|&(_, l)| l).collect();
    let mut best: Option<(usize, f32)> = None;
    for (s, name) in source_names.iter().enumerate() {
        let row = table.device_row(name)?;
        let src_lat: Vec<f32> = transfer_raw.iter().map(|&(i, _)| row[i]).collect();
        if let Ok(rho) = spearman_rho(&target_lat, &src_lat) {
            if best.is_none_or(|(_, b)| rho > b) {
                best = Some((s, rho));
            }
        }
    }
    let (source, _) = best?;
    pred.copy_hw_embedding(target_device, source);
    Some(source)
}

/// Predicts latency scores for pool architectures by index.
///
/// Predictions run in parallel over the `nasflat-parallel` layer (bounded by
/// `NASFLAT_THREADS`); each worker reuses one
/// [`BatchSession`](crate::BatchSession) tape over its contiguous chunk and —
/// above the [`tape_batch`](crate::tape_batch) threshold — evaluates
/// multi-query block-diagonal tape passes instead of query-by-query swaps.
/// Session tapes are bit-identical to fresh tapes, batched passes are
/// bit-identical to per-architecture ones, and each forward is pure, so the
/// output is bit-identical at any thread count and tape-batch setting.
pub fn predict_indices(
    pred: &LatencyPredictor,
    ctx: &TrainContext<'_>,
    device: usize,
    indices: &[usize],
) -> Vec<f32> {
    let cfg = pred.config();
    let archs: Vec<&Arch> = indices.iter().map(|&i| &ctx.pool[i]).collect();
    let supp: Option<Vec<Vec<f32>>> = cfg.supplement.map(|_| {
        indices
            .iter()
            .map(|&i| ctx.supplement(cfg, i).expect("supplement configured"))
            .collect()
    });
    pred.batch_scores(&archs, device, supp.as_deref())
}

/// Spearman rank correlation of predicted scores against ground-truth
/// latencies on an evaluation set. Returns 0.0 when undefined (constant
/// predictions), matching how a useless predictor scores.
pub fn evaluate_spearman(
    pred: &LatencyPredictor,
    ctx: &TrainContext<'_>,
    device: usize,
    eval: &[(usize, f32)],
) -> f32 {
    let indices: Vec<usize> = eval.iter().map(|&(i, _)| i).collect();
    let truth: Vec<f32> = eval.iter().map(|&(_, l)| l).collect();
    let scores = predict_indices(pred, ctx, device, &indices);
    spearman_rho(&scores, &truth).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PredictorConfig;
    use nasflat_hw::DeviceRegistry;
    use nasflat_space::Space;
    use nasflat_tasks::{paper_task, probe_pool};

    fn tiny_cfg() -> PredictorConfig {
        let mut c = PredictorConfig::quick();
        c.op_dim = 8;
        c.hw_dim = 8;
        c.node_dim = 8;
        c.ophw_gnn_dims = vec![12];
        c.ophw_mlp_dims = vec![12];
        c.gnn_dims = vec![12];
        c.head_dims = vec![16];
        c.epochs = 8;
        c.transfer_epochs = 8;
        c
    }

    #[test]
    fn training_improves_single_device_ranking() {
        let pool = probe_pool(Space::Nb201, 60, 0);
        let reg = DeviceRegistry::nb201();
        let device = reg.get("raspi4").unwrap();
        let lats = nasflat_hw::measure_all(device, &pool);
        let raw: Vec<(usize, f32)> = (0..40).map(|i| (i, lats[i])).collect();
        let eval: Vec<(usize, f32)> = (40..60).map(|i| (i, lats[i])).collect();
        let samples = DeviceSamples::new(0, &raw);
        let ctx = TrainContext::new(&pool);

        let mut pred = LatencyPredictor::new(Space::Nb201, vec!["raspi4".into()], 0, tiny_cfg());
        let before = evaluate_spearman(&pred, &ctx, 0, &eval);
        let data = PretrainData {
            devices: vec![samples],
        };
        pretrain(&mut pred, &ctx, &data);
        let after = evaluate_spearman(&pred, &ctx, 0, &eval);
        assert!(
            after > before.max(0.3),
            "training should lift rank correlation: before {before}, after {after}"
        );
    }

    #[test]
    fn hw_init_picks_a_correlated_source() {
        let pool = probe_pool(Space::Nb201, 50, 1);
        let task = paper_task("ND").unwrap();
        let reg = DeviceRegistry::nb201();
        let table = nasflat_hw::LatencyTable::build(reg.devices(), &pool);
        let mut devices = task.train.clone();
        devices.extend(task.test.clone());
        let mut pred = LatencyPredictor::new(Space::Nb201, devices, 0, tiny_cfg());
        // target pixel2 (an mCPU): its transfer samples
        let target_idx = pred.device_index("pixel2").unwrap();
        let row = table.device_row("pixel2").unwrap();
        let transfer: Vec<(usize, f32)> = (0..10).map(|i| (i, row[i])).collect();
        let chosen =
            hw_init_from_correlation(&mut pred, target_idx, &transfer, &table, &task.train)
                .expect("correlation should be computable");
        // CPU-like sources should beat desktop GPUs for pixel2 (paper
        // Table 21: pixel2 correlates ~0.87-0.89 with both server CPUs and
        // mobile CPUs, but only ~0.78-0.81 with batch-1 GPUs).
        let chosen_name = &task.train[chosen];
        let cpu_like = [
            "samsung_a50",
            "pixel3",
            "samsung_s7",
            "essential_ph_1",
            "silver_4114",
            "silver_4210r",
        ];
        assert!(
            cpu_like.contains(&chosen_name.as_str()),
            "expected a CPU-like source for pixel2, got {chosen_name}"
        );
        assert_eq!(
            pred.hw_embedding_row(target_idx),
            pred.hw_embedding_row(chosen)
        );
    }

    #[test]
    fn train_step_returns_none_for_tied_targets() {
        let pool = probe_pool(Space::Nb201, 4, 2);
        let ctx = TrainContext::new(&pool);
        let mut pred = LatencyPredictor::new(Space::Nb201, vec!["x".into()], 0, tiny_cfg());
        let adam = AdamConfig::default();
        let out = train_step(&mut pred, &ctx, 0, &[(0, 1.0), (1, 1.0)], &adam);
        assert!(out.is_none());
        assert!(train_step(&mut pred, &ctx, 0, &[], &adam).is_none());
    }

    #[test]
    fn mse_loss_path_works_too() {
        let pool = probe_pool(Space::Nb201, 20, 3);
        let ctx = TrainContext::new(&pool);
        let mut cfg = tiny_cfg();
        cfg.loss = LossKind::Mse;
        let mut pred = LatencyPredictor::new(Space::Nb201, vec!["x".into()], 0, cfg);
        let adam = AdamConfig::default();
        let batch: Vec<(usize, f32)> = (0..8).map(|i| (i, i as f32 / 8.0)).collect();
        let l1 = train_step(&mut pred, &ctx, 0, &batch, &adam).unwrap();
        for _ in 0..30 {
            train_step(&mut pred, &ctx, 0, &batch, &adam);
        }
        let l2 = train_step(&mut pred, &ctx, 0, &batch, &adam).unwrap();
        assert!(l2 < l1, "MSE should fall: {l1} -> {l2}");
    }
}
