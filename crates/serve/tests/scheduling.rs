//! Adversarial acceptance suite for the deadline-aware ingress scheduler:
//! a best-effort flood must not starve tight-deadline queries under EDF,
//! every evaluated answer stays bitwise the sequential reference, EDF
//! degenerates to FIFO when every request shares one budget, and overdue
//! queries are retired with `DeadlineExceeded` instead of wasting a pass.

use nasflat_core::{LatencyPredictor, PredictorConfig};
use nasflat_serve::{
    IngressClient, IngressServer, ModelBundle, PredictorRegistry, SchedPolicy, ServeConfig,
    ServeError, ServeRequest, SharedRegistry,
};
use nasflat_space::{Arch, Space};

fn tiny_cfg(seed: u64) -> PredictorConfig {
    let mut c = PredictorConfig::quick().with_seed(seed);
    c.op_dim = 8;
    c.hw_dim = 8;
    c.node_dim = 8;
    c.ophw_gnn_dims = vec![12];
    c.ophw_mlp_dims = vec![12];
    c.gnn_dims = vec![12];
    c.head_dims = vec![16];
    c
}

fn bundle(seed: u64, num_devices: usize) -> ModelBundle {
    let devices = (0..num_devices).map(|i| format!("dev_{i}")).collect();
    ModelBundle::single(LatencyPredictor::new(
        Space::Nb201,
        devices,
        0,
        tiny_cfg(seed),
    ))
    .unwrap()
}

fn shared_registry() -> SharedRegistry {
    let mut reg = PredictorRegistry::new(0); // no result cache: every hit is a real pass
    reg.insert("alpha", bundle(7, 3)).unwrap();
    reg.insert("beta", bundle(8, 3)).unwrap();
    reg.into_shared()
}

fn mixed_requests(n: usize, salt: u64) -> Vec<ServeRequest> {
    (0..n)
        .map(|i| {
            let model = if i % 3 == 0 { "beta" } else { "alpha" };
            ServeRequest::new(
                model,
                Arch::nb201_from_index((i as u64 * 547 + salt) % 15_625),
                i % 3,
            )
        })
        .collect()
}

/// The reference: a sequential predict loop straight on the bundles.
fn reference_bits(registry: &SharedRegistry, reqs: &[ServeRequest]) -> Vec<u32> {
    let reg = registry.read().unwrap();
    reqs.iter()
        .map(|r| {
            reg.get(&r.model)
                .unwrap()
                .predict_one(&r.arch, r.device)
                .to_bits()
        })
        .collect()
}

/// The adversarial mix: 64 tight-deadline queries buried in a 512-query
/// best-effort flood, pipelined down one connection into a 4-worker EDF
/// scheduler. Every tight query must be *met* (answered in budget,
/// bitwise the sequential reference) or *expired* (`DeadlineExceeded`) —
/// never silently late — and every best-effort query must still complete
/// bitwise-correct: aging-aware EDF reorders, it does not starve.
#[test]
fn edf_meets_tight_deadlines_without_starving_the_flood() {
    let registry = shared_registry();
    let cfg = ServeConfig::builder()
        .workers(4)
        .batch(8)
        .queue_depth(1024)
        .max_inflight(1024)
        .sched_policy(SchedPolicy::Edf)
        .deadline_default_ms(30_000) // best-effort ordering budget
        .build();
    let server = IngressServer::bind(registry.clone(), &cfg).expect("bind");
    let mut client = IngressClient::connect(server.local_addr()).expect("connect");

    const TOTAL: usize = 576;
    let reqs: Vec<ServeRequest> = mixed_requests(TOTAL, 17)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if i % 9 == 0 {
                r.with_deadline_ms(5_000) // 64 tight queries
            } else {
                r // 512 best-effort
            }
        })
        .collect();
    let tights = reqs.iter().filter(|r| r.deadline_ms.is_some()).count();
    assert_eq!(tights, 64);
    let expected = reference_bits(&registry, &reqs);

    let results = client.predict_many(&reqs, TOTAL);
    let mut tight_ok = 0usize;
    let mut tight_expired = 0usize;
    for (i, result) in results.iter().enumerate() {
        match result {
            Ok(resp) => {
                assert_eq!(resp.score.to_bits(), expected[i], "query {i} diverged");
                if reqs[i].deadline_ms.is_some() {
                    tight_ok += 1;
                }
            }
            Err(ServeError::DeadlineExceeded { .. }) => {
                assert!(
                    reqs[i].deadline_ms.is_some(),
                    "best-effort query {i} can never expire"
                );
                tight_expired += 1;
            }
            Err(other) => panic!("query {i}: unexpected error {other}"),
        }
    }
    // Zero starvation: every best-effort query completed (any miss would
    // have panicked above), and every tight query was answered in budget
    // or honestly expired.
    assert_eq!(tight_ok + tight_expired, 64);

    let metrics = server.shutdown();
    assert_eq!(metrics.busy_rejections, 0, "sized to never overflow");
    assert_eq!(metrics.faults, 0);
    assert_eq!(metrics.queries_served as usize, TOTAL - tight_expired);
    assert_eq!(
        metrics.deadline_met + metrics.deadline_missed,
        tight_ok as u64
    );
    assert_eq!(metrics.deadline_expired, tight_expired as u64);
    assert_eq!(
        metrics.deadline_missed, 0,
        "a 5 s budget on a micro model must never be evaluated late"
    );
}

/// With every request sharing one budget, EDF's priority key reduces to
/// arrival order — the drain must match FIFO answer-for-answer (both
/// bitwise the sequential reference) with nothing expired or late.
#[test]
fn edf_equals_fifo_when_every_deadline_is_equal() {
    let registry = shared_registry();
    let reqs: Vec<ServeRequest> = mixed_requests(128, 29)
        .into_iter()
        .map(|r| r.with_deadline_ms(30_000))
        .collect();
    let expected = reference_bits(&registry, &reqs);

    let mut answers: Vec<Vec<u32>> = Vec::new();
    for policy in [SchedPolicy::Fifo, SchedPolicy::Edf] {
        let cfg = ServeConfig::builder()
            .workers(2)
            .batch(8)
            .sched_policy(policy)
            .build();
        let server = IngressServer::bind(registry.clone(), &cfg).expect("bind");
        let mut client = IngressClient::connect(server.local_addr()).expect("connect");
        let got: Vec<u32> = client
            .predict_many(&reqs, 16)
            .into_iter()
            .map(|r| {
                r.expect("equal generous deadlines never expire")
                    .score
                    .to_bits()
            })
            .collect();
        assert_eq!(got, expected, "{policy:?} diverged from sequential");
        let metrics = server.shutdown();
        assert_eq!(metrics.deadline_met, reqs.len() as u64);
        assert_eq!(metrics.deadline_missed + metrics.deadline_expired, 0);
        answers.push(got);
    }
    assert_eq!(answers[0], answers[1], "EDF must reduce to FIFO here");
}

/// Expiry-before-batch: queries whose budget is already gone at dequeue
/// are answered `DeadlineExceeded` without an evaluation. A zero budget
/// makes the deadline equal the admission instant, so any strictly later
/// dequeue sees it overdue — deterministic, no timing knife-edge.
#[test]
fn overdue_queries_expire_at_dequeue_without_evaluation() {
    let registry = shared_registry();
    let cfg = ServeConfig::builder()
        .workers(1)
        .batch(8)
        .queue_depth(256)
        .max_inflight(256)
        .sched_policy(SchedPolicy::Fifo) // arrival order: flood drains first
        .build();
    let server = IngressServer::bind(registry.clone(), &cfg).expect("bind");
    let mut client = IngressClient::connect(server.local_addr()).expect("connect");

    // 64 best-effort queries ahead of 8 zero-budget stragglers.
    let mut reqs = mixed_requests(64, 53);
    for r in mixed_requests(8, 71) {
        reqs.push(r.with_deadline_ms(0));
    }
    let expected = reference_bits(&registry, &reqs);

    let results = client.predict_many(&reqs, reqs.len());
    for (i, result) in results.iter().enumerate() {
        if i < 64 {
            let resp = result.as_ref().expect("best-effort completes");
            assert_eq!(resp.score.to_bits(), expected[i], "query {i} diverged");
        } else {
            assert!(
                matches!(result, Err(ServeError::DeadlineExceeded { .. })),
                "zero-budget query {i} must expire, got {result:?}"
            );
        }
    }

    let metrics = server.shutdown();
    assert_eq!(metrics.queries_served, 64);
    assert_eq!(metrics.deadline_expired, 8);
    assert_eq!(metrics.deadline_met + metrics.deadline_missed, 0);
}
