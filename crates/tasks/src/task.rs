//! Latency-prediction tasks: named (train devices, test devices) splits.
//!
//! The paper evaluates on 12 tasks (Table 1, detailed in Tables 24–26): the
//! legacy high-correlation sets `ND`/`FD`, the adversarial MultiPredict sets
//! `NA`/`FA`, and the paper's own algorithmically partitioned sets
//! `N1`–`N4` / `F1`–`F4`.

use nasflat_hw::DeviceRegistry;
use nasflat_space::Space;

/// One latency-prediction task: pretrain on `train` devices, transfer to
/// each `test` device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Short identifier used in the paper's tables ("N1", "FA", …).
    pub name: String,
    /// The search space the task operates on.
    pub space: Space,
    /// Source (training) device names.
    pub train: Vec<String>,
    /// Target (test) device names.
    pub test: Vec<String>,
}

impl Task {
    /// Builds a task and validates every device against the space's roster.
    ///
    /// # Panics
    /// Panics if a device name is unknown, appears on both sides, or either
    /// side is empty.
    pub fn new(name: &str, space: Space, train: &[&str], test: &[&str]) -> Self {
        assert!(
            !train.is_empty() && !test.is_empty(),
            "task {name} has an empty side"
        );
        let registry = DeviceRegistry::for_space(space);
        for dev in train.iter().chain(test) {
            assert!(
                registry.get(dev).is_some(),
                "task {name}: unknown device '{dev}' for {space:?}"
            );
        }
        for dev in train {
            assert!(
                !test.contains(dev),
                "task {name}: device '{dev}' on both sides"
            );
        }
        Task {
            name: name.to_string(),
            space,
            train: train.iter().map(|s| s.to_string()).collect(),
            test: test.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Number of source devices.
    pub fn num_train(&self) -> usize {
        self.train.len()
    }

    /// Number of target devices.
    pub fn num_test(&self) -> usize {
        self.test.len()
    }
}

/// The five batch-size-expanded GPU cards of the HELP roster.
const GPU_CARDS: [&str; 5] = ["1080ti", "2080ti", "titan_rtx", "titanx", "titanxp"];

fn gpu_names(batches: &[u32]) -> Vec<String> {
    let mut v = Vec::new();
    for card in GPU_CARDS {
        for &b in batches {
            v.push(format!("{card}_{b}"));
        }
    }
    v
}

/// All 12 paper tasks in Table 7 order: `ND, NA, N1..N4, FD, FA, F1..F4`.
pub fn paper_tasks() -> Vec<Task> {
    let mut v = nb201_tasks();
    v.extend(fbnet_tasks());
    v
}

/// The six NASBench-201 tasks (Tables 24–25).
pub fn nb201_tasks() -> Vec<Task> {
    let s = Space::Nb201;
    let nd = Task::new(
        "ND",
        s,
        &[
            "1080ti_1",
            "1080ti_32",
            "1080ti_256",
            "silver_4114",
            "silver_4210r",
            "samsung_a50",
            "pixel3",
            "essential_ph_1",
            "samsung_s7",
        ],
        &[
            "titan_rtx_256",
            "gold_6226",
            "fpga",
            "pixel2",
            "raspi4",
            "eyeriss",
        ],
    );
    let na_train: Vec<String> = gpu_names(&[1, 32])
        .into_iter()
        .chain(
            [
                "gold_6226",
                "samsung_s7",
                "silver_4114",
                "gold_6240",
                "silver_4210r",
                "samsung_a50",
                "pixel2",
            ]
            .map(String::from),
        )
        .collect();
    let na_train_refs: Vec<&str> = na_train.iter().map(String::as_str).collect();
    let na = Task::new(
        "NA",
        s,
        &na_train_refs,
        &["eyeriss", "gtx_1080ti_fp32", "edge_tpu_int8"],
    );
    let n1 = Task::new(
        "N1",
        s,
        &[
            "edge_tpu_int8",
            "eyeriss",
            "snapdragon_675_adreno_612_int8",
            "snapdragon_855_adreno_640_int8",
            "pixel3",
        ],
        &[
            "1080ti_1",
            "titan_rtx_32",
            "titanxp_1",
            "2080ti_32",
            "titan_rtx_1",
        ],
    );
    let n2 = Task::new(
        "N2",
        s,
        &[
            "1080ti_1",
            "1080ti_32",
            "titanx_32",
            "titanxp_1",
            "titanxp_32",
        ],
        &[
            "jetson_nano_fp16",
            "edge_tpu_int8",
            "snapdragon_675_hexagon_685_int8",
            "snapdragon_855_hexagon_690_int8",
            "pixel3",
        ],
    );
    let n3 = Task::new(
        "N3",
        s,
        &[
            "gtx_1080ti_fp32",
            "jetson_nano_fp16",
            "eyeriss",
            "snapdragon_675_hexagon_685_int8",
            "snapdragon_855_adreno_640_int8",
        ],
        &[
            "1080ti_1",
            "2080ti_1",
            "titanxp_1",
            "2080ti_32",
            "titanxp_32",
        ],
    );
    let n4 = Task::new(
        "N4",
        s,
        &[
            "core_i7_7820x_fp32",
            "jetson_nano_fp32",
            "edge_tpu_int8",
            "eyeriss",
            "snapdragon_855_kryo_485_int8",
            "snapdragon_675_hexagon_685_int8",
            "snapdragon_855_hexagon_690_int8",
            "snapdragon_675_adreno_612_int8",
            "snapdragon_855_adreno_640_int8",
            "pixel2",
        ],
        &["1080ti_1", "2080ti_1", "titan_rtx_1"],
    );
    vec![nd, na, n1, n2, n3, n4]
}

/// The six FBNet tasks (Table 26).
pub fn fbnet_tasks() -> Vec<Task> {
    let s = Space::Fbnet;
    let fd = Task::new(
        "FD",
        s,
        &[
            "1080ti_1",
            "1080ti_32",
            "1080ti_64",
            "silver_4114",
            "silver_4210r",
            "samsung_a50",
            "pixel3",
            "essential_ph_1",
            "samsung_s7",
        ],
        &["fpga", "raspi4", "eyeriss"],
    );
    let fa_train = gpu_names(&[1, 32, 64]);
    let fa_train_refs: Vec<&str> = fa_train.iter().map(String::as_str).collect();
    let fa = Task::new(
        "FA",
        s,
        &fa_train_refs,
        &["gold_6226", "essential_ph_1", "samsung_s7", "pixel2"],
    );
    let f1 = Task::new(
        "F1",
        s,
        &[
            "2080ti_1",
            "essential_ph_1",
            "silver_4114",
            "titan_rtx_1",
            "titan_rtx_32",
        ],
        &["eyeriss", "fpga", "raspi4", "samsung_a50", "samsung_s7"],
    );
    let f2 = Task::new(
        "F2",
        s,
        &[
            "essential_ph_1",
            "gold_6226",
            "gold_6240",
            "pixel3",
            "raspi4",
        ],
        &[
            "1080ti_1",
            "1080ti_32",
            "2080ti_32",
            "titan_rtx_1",
            "titanxp_1",
        ],
    );
    let f3 = Task::new(
        "F3",
        s,
        &["essential_ph_1", "pixel2", "pixel3", "raspi4", "samsung_s7"],
        &[
            "1080ti_1",
            "1080ti_32",
            "2080ti_1",
            "titan_rtx_1",
            "titan_rtx_32",
        ],
    );
    let f4 = Task::new(
        "F4",
        s,
        &[
            "1080ti_64",
            "2080ti_1",
            "eyeriss",
            "gold_6226",
            "gold_6240",
            "raspi4",
            "samsung_s7",
            "silver_4210r",
            "titan_rtx_1",
            "titan_rtx_32",
        ],
        &["1080ti_1", "pixel2", "essential_ph_1"],
    );
    vec![fd, fa, f1, f2, f3, f4]
}

/// Looks up one of the 12 paper tasks by name (case-sensitive).
pub fn paper_task(name: &str) -> Option<Task> {
    paper_tasks().into_iter().find(|t| t.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_tasks_with_paper_names() {
        let tasks = paper_tasks();
        assert_eq!(tasks.len(), 12);
        let names: Vec<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            ["ND", "NA", "N1", "N2", "N3", "N4", "FD", "FA", "F1", "F2", "F3", "F4"]
        );
    }

    #[test]
    fn sides_are_disjoint_and_valid() {
        // Task::new validates against the registry; just touch every task.
        for t in paper_tasks() {
            assert!(t.num_train() >= 5, "{} train too small", t.name);
            assert!(t.num_test() >= 3, "{} test too small", t.name);
        }
    }

    #[test]
    fn paper_counts_match() {
        assert_eq!(paper_task("NA").unwrap().num_train(), 17);
        assert_eq!(paper_task("FA").unwrap().num_train(), 15);
        assert_eq!(paper_task("N4").unwrap().num_train(), 10);
        assert_eq!(paper_task("N4").unwrap().num_test(), 3);
        assert!(paper_task("XX").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown device")]
    fn unknown_device_rejected() {
        let _ = Task::new("bad", Space::Nb201, &["warp_drive"], &["eyeriss"]);
    }

    #[test]
    #[should_panic(expected = "on both sides")]
    fn overlapping_sides_rejected() {
        let _ = Task::new("bad", Space::Nb201, &["eyeriss"], &["eyeriss"]);
    }
}
