//! Deterministic hashing helpers for reproducible device profiles and
//! measurement noise.
//!
//! The simulator must return the *same* latency for the same
//! (device, architecture) pair across runs and platforms, so all stochastic
//! components are derived from SplitMix64 streams keyed by stable hashes
//! rather than from a stateful RNG.

/// SplitMix64 step: maps a state to a well-mixed 64-bit output.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string (stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Uniform `[0, 1)` derived from a seed.
pub fn unit_uniform(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal sample derived from a seed (Box–Muller on two
/// decorrelated uniform draws).
pub fn unit_normal(seed: u64) -> f64 {
    let u1 = unit_uniform(seed).max(1e-12);
    let u2 = unit_uniform(splitmix64(seed ^ 0xDEAD_BEEF_CAFE_F00D));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Lognormal multiplicative jitter `exp(sigma * z)` derived from a seed.
pub fn lognormal_jitter(seed: u64, sigma: f64) -> f64 {
    (sigma * unit_normal(seed)).exp()
}

/// Combines two hashes into one stream key.
pub fn combine(a: u64, b: u64) -> u64 {
    splitmix64(a ^ b.rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_eq!(fnv1a(b"pixel2"), fnv1a(b"pixel2"));
        assert_ne!(fnv1a(b"pixel2"), fnv1a(b"pixel3"));
    }

    #[test]
    fn uniform_in_range() {
        for s in 0..1000u64 {
            let u = unit_uniform(s);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_mean_near_zero() {
        let n = 4000;
        let mean: f64 = (0..n).map(|s| unit_normal(s as u64)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn jitter_positive_and_centered() {
        let n = 4000;
        let vals: Vec<f64> = (0..n).map(|s| lognormal_jitter(s as u64, 0.05)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        let mean = vals.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn combine_differs_by_argument_order() {
        assert_ne!(combine(1, 2), combine(2, 1));
    }
}
