//! The ingress wire protocol: length-prefixed frames over TCP.
//!
//! Every message is one *frame*: a little-endian `u32` body length followed
//! by the body. Bodies start with a one-byte opcode and use the same
//! bounds-checked [`ByteWriter`]/[`ByteReader`] primitives as every
//! persistence format in the workspace:
//!
//! ```text
//! frame       := u32 body_len | body             (body_len ≤ WIRE_MAX_FRAME)
//! REQUEST     := 0x01 | u64 id | u8 space | bytes genotype | u32 device | str model
//!                [ u8 flags | u32 deadline_ms ]  (flags bit 0 = deadline present)
//! RESPONSE    := 0x02 | u64 id | u64 model_version | f32 score
//! ERROR       := 0x03 | u64 id | u8 code | u32 retry_after_ms | str detail
//! STATS_REQ   := 0x04 | u64 id
//! STATS       := 0x05 | u64 id | 14 × u64        (see ServerStats field order)
//! METRICS_REQ := 0x06 | u64 id
//! METRICS     := 0x07 | u64 id | str text        (Prometheus-style exposition;
//!                                                 body_len ≤ WIRE_MAX_METRICS_FRAME)
//! ```
//!
//! The REQUEST trailer is optional for compatibility in both directions:
//! clients without a deadline omit the flags byte entirely (an old server
//! accepts the frame unchanged), and a decoder only reads the trailer when
//! bytes remain after `model` (an old client's frames decode as
//! best-effort). The deadline is a *relative* budget in milliseconds — no
//! wall-clock crosses the wire. Similarly, STATS grew from 11 to 14 `u64`
//! fields; decoders treat the last three (the deadline met/missed/expired
//! counters) as optional and zero-fill when an older server omits them, and
//! ignore any *extra* trailing bytes a newer server appends after field 14
//! (future counters extend the body the same way the deadline counters
//! did). STATS is the one opcode with this tolerance; every other frame
//! still rejects trailing bytes as malformed.
//!
//! Request ids are chosen by the client (any nonzero value; responses echo
//! them), which is what makes pipelining possible: a client may keep many
//! requests in flight and match answers by id. Id `0` is reserved for
//! *connection-level* errors — faults not attributable to a single request
//! (malformed frame, admission refusal, shutdown); on receiving one the
//! client must treat every outstanding request as failed.
//!
//! The declared body length is validated against [`WIRE_MAX_FRAME`]
//! **before any body-sized allocation or read**, so a hostile 4-byte header
//! cannot make the server allocate gigabytes.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use nasflat_space::{Arch, Space};
use nasflat_tensor::{ByteReader, ByteWriter};

use crate::error::ServeError;
use crate::request::{ServeRequest, ServeResponse};

/// Largest admissible frame body, bytes. Far above any real request (a
/// FBNet request is under 64 bytes) while keeping the pre-allocation bound
/// tight.
pub const WIRE_MAX_FRAME: usize = 4096;

/// Largest admissible METRICS frame body, bytes. The text exposition is the
/// one frame that outgrows [`WIRE_MAX_FRAME`] (a page of histogram families
/// is tens of kilobytes); clients read the metrics reply under this larger
/// bound. Server-inbound frames keep the tight [`WIRE_MAX_FRAME`] limit.
pub const WIRE_MAX_METRICS_FRAME: usize = 1 << 20;

const OP_REQUEST: u8 = 0x01;
const OP_RESPONSE: u8 = 0x02;
const OP_ERROR: u8 = 0x03;
const OP_STATS_REQUEST: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_METRICS_REQUEST: u8 = 0x06;
const OP_METRICS: u8 = 0x07;

const CODE_UNKNOWN_MODEL: u8 = 1;
const CODE_BAD_QUERY: u8 = 2;
const CODE_BUSY: u8 = 3;
const CODE_SHUTDOWN: u8 = 4;
const CODE_WIRE: u8 = 5;
const CODE_INTERNAL: u8 = 6;
const CODE_DEADLINE: u8 = 7;

/// REQUEST flags bit 0: a `u32 deadline_ms` follows the flags byte.
const REQ_FLAG_DEADLINE: u8 = 0x01;

/// Why reading or decoding a frame failed.
#[non_exhaustive]
#[derive(Debug)]
pub enum WireFault {
    /// The peer declared a body larger than [`WIRE_MAX_FRAME`]; rejected
    /// before allocating or reading the body.
    Oversized {
        /// Body length the peer declared.
        declared: usize,
        /// The limit it exceeded.
        limit: usize,
    },
    /// The body did not decode as a known frame (bad opcode, truncated
    /// fields, invalid UTF-8, zero-length frame).
    Malformed(String),
    /// The connection closed cleanly at a frame boundary.
    Closed,
    /// A transport I/O error below the framing layer.
    Io(std::io::Error),
}

impl core::fmt::Display for WireFault {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireFault::Oversized { declared, limit } => {
                write!(
                    f,
                    "frame of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            WireFault::Malformed(detail) => write!(f, "malformed frame: {detail}"),
            WireFault::Closed => write!(f, "connection closed"),
            WireFault::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireFault {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireFault::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl WireFault {
    /// A structurally identical fault (ersatz `Clone`; [`std::io::Error`]
    /// is not `Clone`, so the I/O payload is rebuilt from kind + message).
    fn duplicate(&self) -> WireFault {
        match self {
            WireFault::Oversized { declared, limit } => WireFault::Oversized {
                declared: *declared,
                limit: *limit,
            },
            WireFault::Malformed(d) => WireFault::Malformed(d.clone()),
            WireFault::Closed => WireFault::Closed,
            WireFault::Io(e) => WireFault::Io(std::io::Error::new(e.kind(), e.to_string())),
        }
    }
}

/// A query as it travels the wire: the raw, not-yet-validated form of
/// `(id, `[`ServeRequest`]`)`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen nonzero id echoed by the matching response.
    pub id: u64,
    /// [`Space::wire_code`] of the architecture's search space.
    pub space: u8,
    /// Raw genotype bytes (validated against the space on
    /// [`RequestFrame::into_request`]).
    pub genotype: Vec<u8>,
    /// Device index into the model's device list.
    pub device: u32,
    /// Registry name of the target model.
    pub model: String,
    /// Relative deadline budget, milliseconds; `None` = best-effort.
    /// Travels as an optional flags-byte trailer, so deadline-free frames
    /// are byte-identical to the pre-deadline protocol.
    pub deadline_ms: Option<u32>,
}

impl RequestFrame {
    /// Encodes a [`ServeRequest`] for the wire under the given id.
    pub fn from_request(id: u64, req: &ServeRequest) -> Self {
        RequestFrame {
            id,
            space: req.arch.space().wire_code(),
            genotype: req.arch.genotype().to_vec(),
            device: req.device as u32,
            model: req.model.clone(),
            deadline_ms: req.deadline_ms,
        }
    }

    /// Validates the untrusted payload into a [`ServeRequest`].
    ///
    /// # Errors
    /// [`ServeError::BadQuery`] when the space code is unknown, the id is
    /// the reserved `0`, or the genotype is out of range for the space.
    pub fn into_request(self) -> Result<(u64, ServeRequest), ServeError> {
        let RequestFrame {
            id,
            space,
            genotype,
            device,
            model,
            deadline_ms,
        } = self;
        if id == 0 {
            return Err(ServeError::BadQuery(
                "request id 0 is reserved for connection-level errors".into(),
            ));
        }
        let space = Space::from_wire_code(space)
            .ok_or_else(|| ServeError::BadQuery(format!("unknown space code {space}")))?;
        let arch = Arch::try_new(space, genotype).ok_or_else(|| {
            ServeError::BadQuery(format!(
                "genotype is not a valid {} architecture",
                space.short_name()
            ))
        })?;
        let mut req = ServeRequest::new(model, arch, device as usize);
        req.deadline_ms = deadline_ms;
        Ok((id, req))
    }
}

/// A successful answer on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request id.
    pub id: u64,
    /// Registry version of the model that answered.
    pub model_version: u64,
    /// Predicted score, bit-exact over the wire.
    pub score: f32,
}

/// A failure on the wire: per-request when `id` echoes a request,
/// connection-level when `id == 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// Echo of the request id, or `0` for connection-level faults.
    pub id: u64,
    /// Stable failure code (see [`ErrorFrame::to_error`] for the mapping).
    pub code: u8,
    /// Millisecond payload of the code: the retry hint of a busy
    /// rejection, or how late a deadline-exceeded request was (`0` for
    /// every other code).
    pub retry_after_ms: u32,
    /// Human-readable detail.
    pub detail: String,
}

impl ErrorFrame {
    /// Encodes a [`ServeError`] for the wire under the given id.
    pub fn from_error(id: u64, err: &ServeError) -> Self {
        let (code, retry_after_ms, detail) = match err {
            ServeError::UnknownModel(name) => (CODE_UNKNOWN_MODEL, 0, name.clone()),
            ServeError::BadQuery(detail) => (CODE_BAD_QUERY, 0, detail.clone()),
            ServeError::Busy { retry_after_ms } => (CODE_BUSY, *retry_after_ms, String::new()),
            ServeError::Shutdown => (CODE_SHUTDOWN, 0, String::new()),
            ServeError::DeadlineExceeded { missed_by_ms } => {
                (CODE_DEADLINE, *missed_by_ms, String::new())
            }
            ServeError::Wire(fault) => (CODE_WIRE, 0, fault.to_string()),
            // Bundle/Io and any future variant: internal fault, detail only.
            other => (CODE_INTERNAL, 0, other.to_string()),
        };
        ErrorFrame {
            id,
            code,
            retry_after_ms,
            detail,
        }
    }

    /// Decodes the frame back into a [`ServeError`]. Unknown codes (a newer
    /// server) surface as [`ServeError::Wire`] faults.
    pub fn to_error(&self) -> ServeError {
        match self.code {
            CODE_UNKNOWN_MODEL => ServeError::UnknownModel(self.detail.clone()),
            CODE_BAD_QUERY => ServeError::BadQuery(self.detail.clone()),
            CODE_BUSY => ServeError::Busy {
                retry_after_ms: self.retry_after_ms,
            },
            CODE_SHUTDOWN => ServeError::Shutdown,
            CODE_DEADLINE => ServeError::DeadlineExceeded {
                missed_by_ms: self.retry_after_ms,
            },
            CODE_WIRE => ServeError::Wire(WireFault::Malformed(self.detail.clone())),
            CODE_INTERNAL => ServeError::Io(std::io::Error::other(self.detail.clone())),
            other => ServeError::Wire(WireFault::Malformed(format!(
                "unknown error code {other}: {}",
                self.detail
            ))),
        }
    }
}

/// A server-state snapshot on the wire: the registry's result-cache
/// counters, the tiered [`BundleStore`](crate::BundleStore) occupancy, and
/// the model count, in wire field order.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Result-cache hits ([`CacheStats::hits`](crate::CacheStats)).
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries currently held.
    pub cache_entries: u64,
    /// Models resident in the hot tier (decoded, ready to serve).
    pub hot: u64,
    /// Models in the warm tier (metadata parsed, weights on disk).
    pub warm: u64,
    /// Models with a durable on-disk bundle (any tier).
    pub durable: u64,
    /// Hot-tier capacity (0 = unbounded).
    pub hot_capacity: u64,
    /// Hot → warm demotions performed so far.
    pub evictions: u64,
    /// Warm → hot promotions that decoded a bundle from disk.
    pub cold_loads: u64,
    /// Bundles quarantined after failing to decode.
    pub quarantined: u64,
    /// Models the registry currently serves.
    pub models: u64,
    /// Deadline-bound queries answered within their budget.
    pub deadline_met: u64,
    /// Deadline-bound queries evaluated but answered late (they still got
    /// their score).
    pub deadline_missed: u64,
    /// Queries already overdue at dequeue, retired with
    /// [`ServeError::DeadlineExceeded`] without
    /// evaluation.
    pub deadline_expired: u64,
}

/// A stats snapshot frame (server → client answer to a stats request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsFrame {
    /// Echo of the stats-request id.
    pub id: u64,
    /// The snapshot.
    pub stats: ServerStats,
}

/// A metrics-exposition frame (server → client answer to a metrics
/// request): the full Prometheus-style text page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsFrame {
    /// Echo of the metrics-request id.
    pub id: u64,
    /// The text exposition (`# TYPE` headers plus sample lines).
    pub text: String,
}

/// One decoded wire message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server query.
    Request(RequestFrame),
    /// Server → client answer.
    Response(ResponseFrame),
    /// Server → client failure.
    Error(ErrorFrame),
    /// Client → server stats probe (body: opcode + id only).
    StatsRequest(u64),
    /// Server → client stats snapshot.
    Stats(StatsFrame),
    /// Client → server metrics probe (body: opcode + id only).
    MetricsRequest(u64),
    /// Server → client metrics text exposition.
    Metrics(MetricsFrame),
}

impl Frame {
    /// Encodes the frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::with_capacity(64);
        match self {
            Frame::Request(r) => {
                body.put_u8(OP_REQUEST);
                body.put_u64(r.id);
                body.put_u8(r.space);
                body.put_bytes(&r.genotype);
                body.put_u32(r.device);
                body.put_str(&r.model);
                // Deadline-free requests omit the trailer entirely, keeping
                // the frame byte-identical to the pre-deadline protocol.
                if let Some(ms) = r.deadline_ms {
                    body.put_u8(REQ_FLAG_DEADLINE);
                    body.put_u32(ms);
                }
            }
            Frame::Response(r) => {
                body.put_u8(OP_RESPONSE);
                body.put_u64(r.id);
                body.put_u64(r.model_version);
                body.put_f32(r.score);
            }
            Frame::Error(e) => {
                body.put_u8(OP_ERROR);
                body.put_u64(e.id);
                body.put_u8(e.code);
                body.put_u32(e.retry_after_ms);
                body.put_str(&e.detail);
            }
            Frame::StatsRequest(id) => {
                body.put_u8(OP_STATS_REQUEST);
                body.put_u64(*id);
            }
            Frame::Stats(s) => {
                body.put_u8(OP_STATS);
                body.put_u64(s.id);
                let st = &s.stats;
                for v in [
                    st.cache_hits,
                    st.cache_misses,
                    st.cache_entries,
                    st.hot,
                    st.warm,
                    st.durable,
                    st.hot_capacity,
                    st.evictions,
                    st.cold_loads,
                    st.quarantined,
                    st.models,
                    st.deadline_met,
                    st.deadline_missed,
                    st.deadline_expired,
                ] {
                    body.put_u64(v);
                }
            }
            Frame::MetricsRequest(id) => {
                body.put_u8(OP_METRICS_REQUEST);
                body.put_u64(*id);
            }
            Frame::Metrics(m) => {
                body.put_u8(OP_METRICS);
                body.put_u64(m.id);
                body.put_str(&m.text);
            }
        }
        let body = body.into_vec();
        let mut out = ByteWriter::with_capacity(4 + body.len());
        out.put_len(body.len());
        out.put_raw(&body);
        out.into_vec()
    }
}

/// Decodes one frame body (the bytes *after* the length prefix).
fn decode_frame(body: &[u8]) -> Result<Frame, WireFault> {
    let malformed = |e: nasflat_tensor::WireError| WireFault::Malformed(e.to_string());
    let mut r = ByteReader::new(body);
    let op = r.get_u8().map_err(malformed)?;
    let frame = match op {
        OP_REQUEST => {
            let id = r.get_u64().map_err(malformed)?;
            let space = r.get_u8().map_err(malformed)?;
            let genotype = r.get_bytes().map_err(malformed)?.to_vec();
            let device = r.get_u32().map_err(malformed)?;
            let model = r.get_str().map_err(malformed)?.to_string();
            // Optional trailer: old clients end the frame at `model`.
            let deadline_ms = if r.is_empty() {
                None
            } else {
                let flags = r.get_u8().map_err(malformed)?;
                if flags & !REQ_FLAG_DEADLINE != 0 {
                    return Err(WireFault::Malformed(format!(
                        "unknown request flags {flags:#04x}"
                    )));
                }
                if flags & REQ_FLAG_DEADLINE != 0 {
                    Some(r.get_u32().map_err(malformed)?)
                } else {
                    None
                }
            };
            Frame::Request(RequestFrame {
                id,
                space,
                genotype,
                device,
                model,
                deadline_ms,
            })
        }
        OP_RESPONSE => Frame::Response(ResponseFrame {
            id: r.get_u64().map_err(malformed)?,
            model_version: r.get_u64().map_err(malformed)?,
            score: r.get_f32().map_err(malformed)?,
        }),
        OP_ERROR => Frame::Error(ErrorFrame {
            id: r.get_u64().map_err(malformed)?,
            code: r.get_u8().map_err(malformed)?,
            retry_after_ms: r.get_u32().map_err(malformed)?,
            detail: r.get_str().map_err(malformed)?.to_string(),
        }),
        OP_STATS_REQUEST => Frame::StatsRequest(r.get_u64().map_err(malformed)?),
        OP_METRICS_REQUEST => Frame::MetricsRequest(r.get_u64().map_err(malformed)?),
        OP_METRICS => Frame::Metrics(MetricsFrame {
            id: r.get_u64().map_err(malformed)?,
            text: r.get_str().map_err(malformed)?.to_string(),
        }),
        OP_STATS => {
            let id = r.get_u64().map_err(malformed)?;
            let mut fields = [0u64; 14];
            for f in fields.iter_mut().take(11) {
                *f = r.get_u64().map_err(malformed)?;
            }
            // The deadline counters are optional: an older server sends 11
            // fields and the last three stay zero.
            for f in fields.iter_mut().skip(11) {
                if r.is_empty() {
                    break;
                }
                *f = r.get_u64().map_err(malformed)?;
            }
            // Forward compatibility: a newer server may append counters
            // past field 14. Drain and ignore them — STATS alone gets this
            // tolerance; the global trailing-byte check below still rejects
            // junk on every other opcode.
            let extension = r.remaining();
            if extension > 0 {
                let _ = r.get_raw(extension).map_err(malformed)?;
            }
            Frame::Stats(StatsFrame {
                id,
                stats: ServerStats {
                    cache_hits: fields[0],
                    cache_misses: fields[1],
                    cache_entries: fields[2],
                    hot: fields[3],
                    warm: fields[4],
                    durable: fields[5],
                    hot_capacity: fields[6],
                    evictions: fields[7],
                    cold_loads: fields[8],
                    quarantined: fields[9],
                    models: fields[10],
                    deadline_met: fields[11],
                    deadline_missed: fields[12],
                    deadline_expired: fields[13],
                },
            })
        }
        other => return Err(WireFault::Malformed(format!("unknown opcode {other:#x}"))),
    };
    if !r.is_empty() {
        return Err(WireFault::Malformed(format!(
            "{} trailing bytes after frame",
            r.remaining()
        )));
    }
    Ok(frame)
}

/// Writes one frame (single `write_all`, so small frames leave in one
/// segment with `TCP_NODELAY`).
///
/// # Errors
/// Any transport error from the underlying writer.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// Reads one frame, blocking until it is complete (client side; the server
/// uses an incremental, timeout-tolerant reader internally).
///
/// # Errors
/// [`WireFault::Closed`] on clean EOF at a frame boundary,
/// [`WireFault::Oversized`] before the body is read, [`WireFault::Malformed`]
/// on undecodable bodies or mid-frame EOF, [`WireFault::Io`] otherwise.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> Result<Frame, WireFault> {
    let mut len4 = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len4) {
        return Err(if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireFault::Closed
        } else {
            WireFault::Io(e)
        });
    }
    let declared = u32::from_le_bytes(len4) as usize;
    if declared == 0 {
        return Err(WireFault::Malformed("zero-length frame".into()));
    }
    if declared > max_frame {
        return Err(WireFault::Oversized {
            declared,
            limit: max_frame,
        });
    }
    let mut body = vec![0u8; declared];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireFault::Malformed("frame truncated by peer".into())
        } else {
            WireFault::Io(e)
        }
    })?;
    decode_frame(&body)
}

/// Incremental frame reader for sockets polled with a read timeout.
///
/// The server's connection readers must notice a shutdown flag while idle,
/// so their sockets carry a short read timeout. A timeout can strike
/// mid-frame; a blocking `read_exact` would then lose the bytes already
/// consumed and desynchronize the stream. `FrameReader` instead accumulates
/// partial bytes across polls: [`FrameReader::poll`] returns `Ok(None)` on
/// timeout and resumes exactly where it left off. The declared length is
/// still checked against the limit as soon as the 4-byte prefix is
/// buffered — before the body accumulates.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader, ready to accumulate its first frame.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Tries to complete one frame: `Ok(Some)` when a full frame is
    /// buffered, `Ok(None)` when the read timed out first (call again),
    /// `Err` on a protocol or transport fault.
    ///
    /// # Errors
    /// [`WireFault::Oversized`] as soon as the 4-byte prefix declares a
    /// body over `max_frame`, [`WireFault::Closed`] on clean EOF at a
    /// frame boundary, [`WireFault::Malformed`] on undecodable bodies or
    /// mid-frame EOF, [`WireFault::Io`] on transport errors other than a
    /// timeout.
    pub fn poll<R: Read>(
        &mut self,
        r: &mut R,
        max_frame: usize,
    ) -> Result<Option<Frame>, WireFault> {
        loop {
            if self.buf.len() >= 4 {
                let declared =
                    u32::from_le_bytes(self.buf[..4].try_into().expect("length checked")) as usize;
                if declared == 0 {
                    return Err(WireFault::Malformed("zero-length frame".into()));
                }
                if declared > max_frame {
                    return Err(WireFault::Oversized {
                        declared,
                        limit: max_frame,
                    });
                }
                if self.buf.len() >= 4 + declared {
                    let frame = decode_frame(&self.buf[4..4 + declared])?;
                    self.buf.drain(..4 + declared);
                    return Ok(Some(frame));
                }
            }
            let mut chunk = [0u8; 512];
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Err(if self.buf.is_empty() {
                        WireFault::Closed
                    } else {
                        WireFault::Malformed("connection closed mid-frame".into())
                    });
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireFault::Io(e)),
            }
        }
    }
}

/// A blocking client for the ingress wire protocol.
///
/// Speaks the same [`ServeRequest`]/[`ServeResponse`] pair as the
/// in-process registry entry points, over one TCP connection. Supports
/// strict request/response ([`IngressClient::predict`]) and windowed
/// pipelining ([`IngressClient::predict_many`]).
#[derive(Debug)]
pub struct IngressClient {
    stream: TcpStream,
}

impl IngressClient {
    /// Connects to an ingress server.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(IngressClient { stream })
    }

    /// Fetches the server's stats snapshot: result-cache counters, tiered
    /// store occupancy, and the model count. One round trip; must not be
    /// interleaved with outstanding [`IngressClient::predict_many`] calls
    /// (each call fully drains its own replies).
    ///
    /// # Errors
    /// Whatever the server answered with (e.g. [`ServeError::Shutdown`]) or
    /// a local [`ServeError::Wire`] fault.
    pub fn stats(&mut self) -> Result<ServerStats, ServeError> {
        const STATS_ID: u64 = 1;
        write_frame(&mut self.stream, &Frame::StatsRequest(STATS_ID))
            .map_err(|e| ServeError::Wire(WireFault::Io(e)))?;
        match read_frame(&mut self.stream, WIRE_MAX_FRAME) {
            Ok(Frame::Stats(s)) if s.id == STATS_ID => Ok(s.stats),
            Ok(Frame::Stats(s)) => Err(ServeError::Wire(WireFault::Malformed(format!(
                "stats response for unknown id {}",
                s.id
            )))),
            Ok(Frame::Error(e)) => Err(e.to_error()),
            Ok(_) => Err(ServeError::Wire(WireFault::Malformed(
                "unexpected frame while awaiting stats".into(),
            ))),
            Err(fault) => Err(ServeError::Wire(fault)),
        }
    }

    /// Fetches the server's Prometheus-style text metrics exposition:
    /// per-stage latency histograms (queue wait, batch assembly, tape
    /// evaluation, response write), batch/group-size histograms, live
    /// queue-depth and inflight gauges, the ingress ledger, and per-model
    /// serve/hit/miss counters. Answered inline by the connection reader
    /// (like [`IngressClient::stats`]), so it never queues behind
    /// admission. One round trip; must not be interleaved with outstanding
    /// [`IngressClient::predict_many`] calls.
    ///
    /// # Errors
    /// Whatever the server answered with (e.g. [`ServeError::Shutdown`]) or
    /// a local [`ServeError::Wire`] fault.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        const METRICS_ID: u64 = 1;
        write_frame(&mut self.stream, &Frame::MetricsRequest(METRICS_ID))
            .map_err(|e| ServeError::Wire(WireFault::Io(e)))?;
        // The exposition is the one frame allowed past WIRE_MAX_FRAME.
        match read_frame(&mut self.stream, WIRE_MAX_METRICS_FRAME) {
            Ok(Frame::Metrics(m)) if m.id == METRICS_ID => Ok(m.text),
            Ok(Frame::Metrics(m)) => Err(ServeError::Wire(WireFault::Malformed(format!(
                "metrics response for unknown id {}",
                m.id
            )))),
            Ok(Frame::Error(e)) => Err(e.to_error()),
            Ok(_) => Err(ServeError::Wire(WireFault::Malformed(
                "unexpected frame while awaiting metrics".into(),
            ))),
            Err(fault) => Err(ServeError::Wire(fault)),
        }
    }

    /// One query, one round trip.
    ///
    /// # Errors
    /// Whatever the server answered with (unknown model, bad query, busy,
    /// shutdown) or a local [`ServeError::Wire`] fault.
    pub fn predict(&mut self, req: &ServeRequest) -> Result<ServeResponse, ServeError> {
        self.predict_many(std::slice::from_ref(req), 1)
            .pop()
            .expect("one request yields one result")
    }

    /// Pipelined queries: keeps up to `window` requests in flight and
    /// matches responses by id. Results are returned in input order; a
    /// per-request failure (e.g. a busy rejection) fails only its slot,
    /// while a connection-level fault fails every slot still unanswered.
    pub fn predict_many(
        &mut self,
        reqs: &[ServeRequest],
        window: usize,
    ) -> Vec<Result<ServeResponse, ServeError>> {
        enum Abort {
            Frame(ErrorFrame),
            Fault(WireFault),
        }
        let window = window.max(1);
        let mut out: Vec<Option<Result<ServeResponse, ServeError>>> =
            reqs.iter().map(|_| None).collect();
        let mut sent = 0usize;
        let mut outstanding = 0usize;
        let mut abort: Option<Abort> = None;
        while abort.is_none() && (sent < reqs.len() || outstanding > 0) {
            while sent < reqs.len() && outstanding < window {
                // Ids are input index + 1: nonzero, and trivially invertible.
                let frame =
                    Frame::Request(RequestFrame::from_request(sent as u64 + 1, &reqs[sent]));
                if let Err(e) = write_frame(&mut self.stream, &frame) {
                    abort = Some(Abort::Fault(WireFault::Io(e)));
                    break;
                }
                sent += 1;
                outstanding += 1;
            }
            if abort.is_some() || outstanding == 0 {
                break;
            }
            let slot_of = |id: u64| -> Option<usize> {
                let idx = (id as usize).checked_sub(1)?;
                (idx < sent && out[idx].is_none()).then_some(idx)
            };
            match read_frame(&mut self.stream, WIRE_MAX_FRAME) {
                Ok(Frame::Response(r)) => match slot_of(r.id) {
                    Some(idx) => {
                        out[idx] = Some(Ok(ServeResponse::new(r.score, r.model_version)));
                        outstanding -= 1;
                    }
                    None => {
                        abort = Some(Abort::Fault(WireFault::Malformed(format!(
                            "response for unknown request id {}",
                            r.id
                        ))));
                    }
                },
                Ok(Frame::Error(e)) if e.id == 0 => abort = Some(Abort::Frame(e)),
                Ok(Frame::Error(e)) => match slot_of(e.id) {
                    Some(idx) => {
                        out[idx] = Some(Err(e.to_error()));
                        outstanding -= 1;
                    }
                    None => {
                        abort = Some(Abort::Fault(WireFault::Malformed(format!(
                            "error for unknown request id {}",
                            e.id
                        ))));
                    }
                },
                Ok(Frame::Request(_) | Frame::StatsRequest(_) | Frame::MetricsRequest(_)) => {
                    abort = Some(Abort::Fault(WireFault::Malformed(
                        "server sent a request frame".into(),
                    )));
                }
                Ok(Frame::Stats(s)) => {
                    abort = Some(Abort::Fault(WireFault::Malformed(format!(
                        "unsolicited stats frame (id {})",
                        s.id
                    ))));
                }
                Ok(Frame::Metrics(m)) => {
                    abort = Some(Abort::Fault(WireFault::Malformed(format!(
                        "unsolicited metrics frame (id {})",
                        m.id
                    ))));
                }
                Err(fault) => abort = Some(Abort::Fault(fault)),
            }
        }
        // Unanswered (and unsent) slots inherit the abort reason.
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(match &abort {
                        Some(Abort::Frame(e)) => e.to_error(),
                        Some(Abort::Fault(f)) => ServeError::Wire(f.duplicate()),
                        None => ServeError::Wire(WireFault::Closed),
                    })
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasflat_space::{Arch, Space};

    fn sample_request() -> ServeRequest {
        ServeRequest::new("prod", Arch::nb201_from_index(4321), 2)
    }

    #[test]
    fn frames_round_trip_through_the_wire() {
        let frames = [
            Frame::Request(RequestFrame::from_request(9, &sample_request())),
            Frame::Request(RequestFrame::from_request(
                10,
                &sample_request().with_deadline_ms(250),
            )),
            Frame::Response(ResponseFrame {
                id: 9,
                model_version: 3,
                score: -0.0, // sign bit must survive
            }),
            Frame::Error(ErrorFrame::from_error(
                0,
                &ServeError::Busy { retry_after_ms: 12 },
            )),
            Frame::StatsRequest(17),
            Frame::Stats(StatsFrame {
                id: 17,
                stats: ServerStats {
                    cache_hits: 1,
                    cache_misses: 2,
                    cache_entries: 3,
                    hot: 4,
                    warm: 5,
                    durable: 6,
                    hot_capacity: 7,
                    evictions: 8,
                    cold_loads: 9,
                    quarantined: 10,
                    models: 11,
                    deadline_met: 12,
                    deadline_missed: 13,
                    deadline_expired: 14,
                },
            }),
            Frame::MetricsRequest(23),
            Frame::Metrics(MetricsFrame {
                id: 23,
                text: "# TYPE nasflat_queue_depth gauge\nnasflat_queue_depth 0\n".into(),
            }),
        ];
        let mut pipe = Vec::new();
        for f in &frames {
            write_frame(&mut pipe, f).unwrap();
        }
        let mut r = &pipe[..];
        for f in &frames {
            let got = read_frame(&mut r, WIRE_MAX_FRAME).unwrap();
            assert_eq!(&got, f);
            if let (Frame::Response(a), Frame::Response(b)) = (&got, f) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
        assert!(matches!(
            read_frame(&mut r, WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Closed
        ));
    }

    #[test]
    fn request_validation_rejects_garbage() {
        let (id, req) = RequestFrame::from_request(5, &sample_request())
            .into_request()
            .unwrap();
        assert_eq!((id, &req.model[..], req.device), (5, "prod", 2));
        assert_eq!(req.arch, Arch::nb201_from_index(4321));

        let bad_space = RequestFrame {
            space: 200,
            ..RequestFrame::from_request(5, &sample_request())
        };
        assert!(matches!(
            bad_space.into_request().unwrap_err(),
            ServeError::BadQuery(d) if d.contains("space code")
        ));
        let bad_genotype = RequestFrame {
            genotype: vec![9; Space::Nb201.genotype_len()], // op 9 > 4
            ..RequestFrame::from_request(5, &sample_request())
        };
        assert!(matches!(
            bad_genotype.into_request().unwrap_err(),
            ServeError::BadQuery(_)
        ));
        let zero_id = RequestFrame::from_request(0, &sample_request());
        assert!(matches!(
            zero_id.into_request().unwrap_err(),
            ServeError::BadQuery(d) if d.contains("reserved")
        ));
    }

    #[test]
    fn oversized_frames_are_rejected_from_the_header_alone() {
        // A 4-byte header declaring a huge body: rejected before any body
        // bytes exist to read (blocking path) or accumulate (poll path).
        let header = (WIRE_MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &header[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Oversized { declared, limit }
                if declared == WIRE_MAX_FRAME + 1 && limit == WIRE_MAX_FRAME
        ));
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut &header[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Oversized { .. }
        ));
        // Zero-length frames are equally dead on arrival.
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(_)
        ));
    }

    #[test]
    fn malformed_bodies_are_faults_not_panics() {
        // Unknown opcode.
        let mut w = ByteWriter::new();
        w.put_len(1);
        w.put_u8(0x7F);
        let bytes = w.into_vec();
        assert!(matches!(
            read_frame(&mut &bytes[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(d) if d.contains("opcode")
        ));
        // Truncated request body (declared length covers only the opcode).
        let mut w = ByteWriter::new();
        w.put_len(1);
        w.put_u8(OP_REQUEST);
        let bytes = w.into_vec();
        assert!(matches!(
            read_frame(&mut &bytes[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(_)
        ));
        // Trailing junk after a valid body.
        let mut inner = ByteWriter::new();
        inner.put_u8(OP_RESPONSE);
        inner.put_u64(1);
        inner.put_u64(1);
        inner.put_f32(0.5);
        inner.put_u8(0xAA); // extra byte
        let body = inner.into_vec();
        let mut w = ByteWriter::new();
        w.put_len(body.len());
        w.put_raw(&body);
        let bytes = w.into_vec();
        assert!(matches!(
            read_frame(&mut &bytes[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(d) if d.contains("trailing")
        ));
    }

    /// A reader that delivers its script one item at a time: bytes arrive
    /// in dribs, `None` entries simulate a read timeout.
    struct Script(std::collections::VecDeque<Option<Vec<u8>>>);
    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.pop_front() {
                Some(Some(bytes)) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(None) => Err(std::io::ErrorKind::WouldBlock.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let frame = Frame::Response(ResponseFrame {
            id: 7,
            model_version: 1,
            score: 1.25,
        });
        let encoded = frame.encode();
        // Split mid-length-prefix and mid-body, with timeouts interleaved.
        let script: std::collections::VecDeque<Option<Vec<u8>>> = [
            Some(encoded[..2].to_vec()),
            None,
            Some(encoded[2..9].to_vec()),
            None,
            None,
            Some(encoded[9..].to_vec()),
        ]
        .into_iter()
        .collect();
        let mut r = Script(script);
        let mut fr = FrameReader::new();
        let mut polls = 0;
        loop {
            polls += 1;
            match fr.poll(&mut r, WIRE_MAX_FRAME).unwrap() {
                Some(got) => {
                    assert_eq!(got, frame);
                    break;
                }
                None => assert!(polls < 10, "reader never completed the frame"),
            }
        }
        // Clean EOF at the boundary is Closed; mid-frame EOF is Malformed.
        assert!(matches!(
            fr.poll(&mut r, WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Closed
        ));
        let mut short = Script([Some(encoded[..6].to_vec())].into_iter().collect());
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut short, WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(d) if d.contains("mid-frame")
        ));
    }

    #[test]
    fn error_frames_round_trip_every_serve_error() {
        let cases = [
            ServeError::UnknownModel("m".into()),
            ServeError::BadQuery("device 9 out of range".into()),
            ServeError::Busy { retry_after_ms: 42 },
            ServeError::Shutdown,
            ServeError::DeadlineExceeded { missed_by_ms: 8 },
        ];
        for err in &cases {
            let frame = ErrorFrame::from_error(3, err);
            let back = frame.to_error();
            // Structural equality: same variant, same payload.
            assert_eq!(format!("{err}"), format!("{back}"));
        }
        // Busy keeps its retry hint through the round trip.
        let busy = ErrorFrame::from_error(1, &ServeError::Busy { retry_after_ms: 42 });
        assert_eq!(busy.retry_after_ms, 42);
        assert!(matches!(
            busy.to_error(),
            ServeError::Busy { retry_after_ms: 42 }
        ));
        // Unknown codes from a newer server degrade to a wire fault.
        let future = ErrorFrame {
            id: 1,
            code: 99,
            retry_after_ms: 0,
            detail: "quota exceeded".into(),
        };
        assert!(matches!(future.to_error(), ServeError::Wire(_)));
        // DeadlineExceeded carries its lateness through the retry slot.
        let late = ErrorFrame::from_error(2, &ServeError::DeadlineExceeded { missed_by_ms: 77 });
        assert_eq!(late.retry_after_ms, 77);
        assert!(matches!(
            late.to_error(),
            ServeError::DeadlineExceeded { missed_by_ms: 77 }
        ));
    }

    #[test]
    fn deadline_trailer_is_backward_and_forward_compatible() {
        // A deadline-free request encodes byte-identically to the
        // pre-deadline protocol: no flags byte at all.
        let plain = Frame::Request(RequestFrame::from_request(5, &sample_request()));
        let with_deadline = Frame::Request(RequestFrame::from_request(
            5,
            &sample_request().with_deadline_ms(100),
        ));
        assert_eq!(plain.encode().len() + 5, with_deadline.encode().len());
        let decoded = read_frame(&mut &plain.encode()[..], WIRE_MAX_FRAME).unwrap();
        assert!(matches!(decoded, Frame::Request(r) if r.deadline_ms.is_none()));
        // The deadline survives frame → ServeRequest validation.
        let Frame::Request(rf) =
            read_frame(&mut &with_deadline.encode()[..], WIRE_MAX_FRAME).unwrap()
        else {
            panic!("request frame expected")
        };
        let (_, req) = rf.into_request().unwrap();
        assert_eq!(req.deadline_ms, Some(100));
        // A flags byte with unknown bits set is rejected, not ignored —
        // a future protocol extension must not silently decode wrong.
        let mut bytes = with_deadline.encode();
        let flags_at = plain.encode().len(); // first trailer byte
        bytes[flags_at] |= 0x80;
        assert!(matches!(
            read_frame(&mut &bytes[..], WIRE_MAX_FRAME).unwrap_err(),
            WireFault::Malformed(d) if d.contains("flags")
        ));
        // An 11-field stats body (older server) zero-fills the deadline
        // counters instead of failing.
        let mut body = ByteWriter::new();
        body.put_u8(OP_STATS);
        body.put_u64(3);
        for v in 1..=11u64 {
            body.put_u64(v);
        }
        let body = body.into_vec();
        let mut framed = ByteWriter::new();
        framed.put_len(body.len());
        framed.put_raw(&body);
        let bytes = framed.into_vec();
        let Frame::Stats(s) = read_frame(&mut &bytes[..], WIRE_MAX_FRAME).unwrap() else {
            panic!("stats frame expected")
        };
        assert_eq!(s.stats.models, 11);
        assert_eq!(
            (
                s.stats.deadline_met,
                s.stats.deadline_missed,
                s.stats.deadline_expired
            ),
            (0, 0, 0)
        );
    }
}
