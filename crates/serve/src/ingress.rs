//! The always-on TCP ingress: accept loop, admission control, and the
//! cross-model coalescing scheduler.
//!
//! Thread topology (all long-lived threads are tracked in
//! [`nasflat_parallel::WorkerSet`]s and joined at shutdown):
//!
//! ```text
//! accept loop ──► per-connection reader ──► bounded DeadlineQueue
//!       │                 │  ▲               (EDF + aging | FIFO)
//!       │                 │  └ per-conn          │
//!       │                 │    inflight cap      ▼
//!       │         per-connection writer ◄── scheduler workers
//!       └ max_connections gate               (coalesce across models,
//!                                             group by deadline class)
//! ```
//!
//! **Backpressure, never buffering.** Overload is answered, not absorbed:
//! a connection beyond [`ServeConfig::max_connections`] is refused with a
//! busy frame and closed; a request arriving when the global queue is full
//! is rejected with [`ServeError::Busy`] carrying a retry-after hint — by
//! construction nothing in the server grows with offered load. The
//! per-connection inflight cap ([`ServeConfig::max_inflight`]) blocks a
//! single pipelining client *before* it can monopolize the shared queue.
//!
//! **Deadline-aware draining.** The global queue is a
//! [`DeadlineQueue`](crate::DeadlineQueue): under
//! [`SchedPolicy::Edf`](crate::SchedPolicy) requests pop earliest-deadline
//! first (best-effort requests sort with the
//! [`deadline_default_ms`](ServeConfig::deadline_default_ms) budget, aged
//! by [`starvation_boost`](ServeConfig::starvation_boost) so a
//! tight-deadline flood can never starve them), while
//! [`SchedPolicy::Fifo`](crate::SchedPolicy) preserves exact arrival
//! order. A popped group never mixes deadline-bound and best-effort
//! queries in one tape pass, and queries already overdue at dequeue are
//! answered [`ServeError::DeadlineExceeded`] immediately instead of being
//! evaluated.
//!
//! **Cross-model coalescing.** Scheduler workers drain the global queue
//! like the in-process [`DynamicBatcher`](crate::DynamicBatcher): block
//! for a group of up to [`ServeConfig::batch`] queries, then evaluate it —
//! grouped by model version — as mixed-device multi-query tape passes.
//! Queries from *different connections* to the same model share a pass;
//! the block-diagonal bit-identity contract makes the composition
//! invisible: every reply is bitwise the sequential
//! [`ModelBundle::predict_one`](crate::ModelBundle::predict_one) answer at
//! any connection, worker, or batch count — under either policy, because
//! scheduling only changes *which* queries share a pass, never a query's
//! answer.
//!
//! **Graceful shutdown.** [`IngressServer::shutdown`] stops accepting,
//! lets readers notice the flag at their next read-timeout tick, drains
//! every admitted job through the workers, flushes the replies, and joins
//! all threads. In-flight requests are answered; later ones see a shutdown
//! error frame or EOF.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use nasflat_core::SessionCounters;
use nasflat_parallel::WorkerSet;
use nasflat_space::Arch;

use crate::bundle::ModelBundle;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::registry::SharedRegistry;
use crate::request::{ServeRequest, ServeResponse};
use crate::sched::{DeadlineQueue, PushError, QueueEntry};
use crate::telemetry::{
    render_counter, render_gauge, render_labelled, DeadlineVerdict, RequestTrace, Telemetry,
};
use crate::wire::{
    write_frame, ErrorFrame, Frame, FrameReader, MetricsFrame, ResponseFrame, ServerStats,
    StatsFrame, WireFault, WIRE_MAX_FRAME,
};

/// One admitted query on its way to a scheduler worker. The model version
/// and bundle are pinned at admission, so a hot-swap mid-flight never
/// mixes versions within a reply. The registry name rides along for the
/// per-model serve counters.
struct Job {
    id: u64,
    model: String,
    model_version: u64,
    bundle: Arc<ModelBundle>,
    arch: Arch,
    device: usize,
    reply: Sender<Reply>,
}

/// What a connection's writer thread sends back. `counted` marks replies
/// that retire an inflight slot (exactly the jobs that were admitted to
/// the global queue). `trace` is the request's lifecycle record so far
/// (telemetry enabled only); the writer stamps the reply time and commits
/// it to the trace ring after the frame is written.
struct Reply {
    id: u64,
    body: ReplyBody,
    counted: bool,
    trace: Option<RequestTrace>,
}

/// A reply is either a query's answer (score or failure), a stats
/// snapshot, or a metrics exposition — the last two answered directly from
/// the reader without touching the queue.
enum ReplyBody {
    Answer(Result<ServeResponse, ServeError>),
    Stats(ServerStats),
    Metrics(String),
}

/// Per-connection admission control: a counting semaphore over the number
/// of admitted-but-unanswered requests. `acquire` blocks the connection's
/// reader (backpressure through TCP flow control), re-checking the
/// shutdown flag so a blocked reader cannot stall termination.
struct InflightSlots {
    cap: usize,
    count: Mutex<usize>,
    freed: Condvar,
}

impl InflightSlots {
    fn new(cap: usize) -> Self {
        InflightSlots {
            cap: cap.max(1),
            count: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Blocks until a slot is free; `false` when shutdown arrived first.
    fn acquire(&self, shutdown: &AtomicBool) -> bool {
        let mut count = self.count.lock().expect("inflight lock");
        while *count >= self.cap {
            if shutdown.load(Ordering::Acquire) {
                return false;
            }
            let (guard, _) = self
                .freed
                .wait_timeout(count, Duration::from_millis(20))
                .expect("inflight lock");
            count = guard;
        }
        *count += 1;
        true
    }

    fn release(&self) {
        let mut count = self.count.lock().expect("inflight lock");
        *count = count.saturating_sub(1);
        drop(count);
        self.freed.notify_one();
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    accepted: AtomicU64,
    refused: AtomicU64,
    served: AtomicU64,
    busy: AtomicU64,
    faulted: AtomicU64,
    groups: AtomicU64,
    max_group: AtomicU64,
    deadline_met: AtomicU64,
    deadline_missed: AtomicU64,
    deadline_expired: AtomicU64,
}

/// A point-in-time snapshot of the ingress counters
/// ([`IngressServer::metrics`]).
#[non_exhaustive]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressMetrics {
    /// Connections admitted by the accept loop.
    pub connections_accepted: u64,
    /// Connections refused at the [`ServeConfig::max_connections`] gate.
    pub connections_refused: u64,
    /// Queries answered with a score.
    pub queries_served: u64,
    /// Requests rejected with [`ServeError::Busy`] (global queue full).
    pub busy_rejections: u64,
    /// Requests that failed validation or framing (bad query, unknown
    /// model, malformed frame).
    pub faults: u64,
    /// Coalesced groups evaluated by the scheduler workers.
    pub groups: u64,
    /// Largest coalesced group (`u64` like every other field, so the
    /// snapshot serializes uniformly).
    pub max_group: u64,
    /// Deadline-bound queries answered within their budget.
    pub deadline_met: u64,
    /// Deadline-bound queries evaluated but answered late (the client
    /// still got the score).
    pub deadline_missed: u64,
    /// Queries already overdue at dequeue, answered
    /// [`ServeError::DeadlineExceeded`] without evaluation.
    pub deadline_expired: u64,
}

/// State shared by every ingress thread.
struct Ingress {
    registry: SharedRegistry,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    live_conns: AtomicUsize,
    metrics: MetricsInner,
    telemetry: Arc<Telemetry>,
}

impl Ingress {
    fn metrics_snapshot(&self) -> IngressMetrics {
        let m = &self.metrics;
        IngressMetrics {
            connections_accepted: m.accepted.load(Ordering::Relaxed),
            connections_refused: m.refused.load(Ordering::Relaxed),
            queries_served: m.served.load(Ordering::Relaxed),
            busy_rejections: m.busy.load(Ordering::Relaxed),
            faults: m.faulted.load(Ordering::Relaxed),
            groups: m.groups.load(Ordering::Relaxed),
            max_group: m.max_group.load(Ordering::Relaxed),
            deadline_met: m.deadline_met.load(Ordering::Relaxed),
            deadline_missed: m.deadline_missed.load(Ordering::Relaxed),
            deadline_expired: m.deadline_expired.load(Ordering::Relaxed),
        }
    }
}

/// Decrements the live-connection gauge when the *last* per-connection
/// thread (reader or writer, whichever outlives the other) finishes.
struct ConnToken(Arc<Ingress>);

impl Drop for ConnToken {
    fn drop(&mut self) {
        self.0.live_conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The always-on TCP serving front door (the `ingress` module source
/// documents the thread topology and the backpressure contract).
///
/// Dropping the server performs the same graceful shutdown as
/// [`IngressServer::shutdown`].
pub struct IngressServer {
    local_addr: SocketAddr,
    shared: Arc<Ingress>,
    accept: Option<WorkerSet>,
    conns: Option<Arc<WorkerSet>>,
    workers: Option<WorkerSet>,
    queue: Arc<DeadlineQueue<Job>>,
}

impl core::fmt::Debug for IngressServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("IngressServer")
            .field("local_addr", &self.local_addr)
            .field("metrics", &self.metrics())
            .finish()
    }
}

impl IngressServer {
    /// Binds the listener at [`ServeConfig::bind`] (port 0 = ephemeral)
    /// and starts the accept loop plus [`ServeConfig::workers`] scheduler
    /// workers over `registry`. The registry stays shared: operators
    /// hot-swap models through their own handle while the server runs.
    ///
    /// # Errors
    /// [`ServeError::Io`] when binding the listener or spawning a thread
    /// fails.
    pub fn bind(registry: SharedRegistry, cfg: &ServeConfig) -> Result<IngressServer, ServeError> {
        let listener = TcpListener::bind(cfg.bind)?;
        let local_addr = listener.local_addr()?;
        let telemetry = if cfg.telemetry {
            Telemetry::new(cfg.trace_capacity)
        } else {
            Telemetry::disabled()
        };
        let shared = Arc::new(Ingress {
            registry,
            cfg: cfg.clone(),
            shutdown: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            metrics: MetricsInner::default(),
            telemetry: Arc::new(telemetry),
        });
        let queue = Arc::new(DeadlineQueue::<Job>::new(
            cfg.queue_depth.max(1),
            cfg.sched_policy,
            cfg.deadline_default_ms,
            cfg.starvation_boost,
        ));
        let workers = WorkerSet::new("nasflat-ingress-worker");
        for _ in 0..cfg.workers.max(1) {
            let queue = queue.clone();
            let shared = shared.clone();
            workers.spawn(move || scheduler_loop(&queue, &shared))?;
        }
        let conns = Arc::new(WorkerSet::new("nasflat-ingress-conn"));
        let accept = WorkerSet::new("nasflat-ingress-accept");
        {
            let shared = shared.clone();
            let conns = conns.clone();
            let queue = queue.clone();
            accept.spawn(move || accept_loop(listener, &shared, &conns, &queue))?;
        }
        Ok(IngressServer {
            local_addr,
            shared,
            accept: Some(accept),
            conns: Some(conns),
            workers: Some(workers),
            queue,
        })
    }

    /// The bound address — the one clients connect to, with the real port
    /// when the config asked for an ephemeral one.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the ingress counters.
    pub fn metrics(&self) -> IngressMetrics {
        self.shared.metrics_snapshot()
    }

    /// The server's [`Telemetry`] bundle: per-stage latency histograms,
    /// size histograms, gauges, and the request-trace ring. In-process
    /// access to what the `METRICS` wire op exposes as text.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Dumps the request-trace ring, oldest first — the per-request
    /// lifecycle records (admission → dequeue → eval → reply timestamps
    /// plus deadline verdicts). Empty when telemetry is disabled.
    pub fn traces(&self) -> Vec<RequestTrace> {
        self.shared.telemetry.traces()
    }

    /// The full Prometheus-style text exposition, rendered in-process —
    /// byte-for-byte what [`IngressClient::metrics`] fetches over TCP
    /// (modulo the counters moving between the two renders).
    ///
    /// [`IngressClient::metrics`]: crate::IngressClient::metrics
    pub fn metrics_text(&self) -> String {
        exposition(&self.shared, &self.queue)
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// admitted, flush replies, join every thread. Returns the final
    /// counter snapshot.
    pub fn shutdown(mut self) -> IngressMetrics {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        if !self.shared.shutdown.swap(true, Ordering::AcqRel) {
            // Wake the accept loop out of its blocking accept().
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(accept) = self.accept.take() {
            accept.join();
        }
        // Readers exit at their next read-timeout tick; closing the queue
        // rejects any late push with `Closed` (answered as a shutdown
        // error) and lets workers drain what remains, then exit.
        self.queue.close();
        if let Some(conns) = self.conns.take() {
            // The accept thread held the only other handle and has joined,
            // so unwrapping cannot fail; the fallback spin is pure caution.
            match Arc::try_unwrap(conns) {
                Ok(set) => set.join(),
                Err(arc) => {
                    while arc.active() > 0 {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        if let Some(workers) = self.workers.take() {
            workers.join();
        }
    }
}

impl Drop for IngressServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: &Arc<Ingress>,
    conns: &Arc<WorkerSet>,
    queue: &Arc<DeadlineQueue<Job>>,
) {
    loop {
        let mut stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            // The shutdown wake-up (or an unlucky late client).
            let _ = write_frame(
                &mut stream,
                &Frame::Error(ErrorFrame::from_error(0, &ServeError::Shutdown)),
            );
            break;
        }
        if shared.live_conns.load(Ordering::Acquire) >= shared.cfg.max_connections {
            shared.metrics.refused.fetch_add(1, Ordering::Relaxed);
            let _ = write_frame(
                &mut stream,
                &Frame::Error(ErrorFrame::from_error(
                    0,
                    &ServeError::Busy {
                        retry_after_ms: shared.cfg.retry_after_ms,
                    },
                )),
            );
            continue; // dropping the stream closes it
        }
        shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
        shared.live_conns.fetch_add(1, Ordering::AcqRel);
        spawn_connection(conns, stream, shared, queue);
    }
}

fn spawn_connection(
    conns: &Arc<WorkerSet>,
    stream: TcpStream,
    shared: &Arc<Ingress>,
    queue: &Arc<DeadlineQueue<Job>>,
) {
    // The token is shared by both per-connection threads; the gauge drops
    // when the last of them finishes (or a spawn fails below).
    let token = Arc::new(ConnToken(shared.clone()));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let slots = Arc::new(InflightSlots::new(shared.cfg.max_inflight));
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<Reply>();
    {
        let slots = slots.clone();
        let token = token.clone();
        let telemetry = shared.telemetry.clone();
        if conns
            .spawn(move || {
                writer_loop(writer_stream, reply_rx, &slots, &telemetry);
                drop(token);
            })
            .is_err()
        {
            return;
        }
    }
    let shared = shared.clone();
    let queue = queue.clone();
    // If this spawn fails, the closure is dropped unrun: reply_tx goes with
    // it, the writer sees the disconnect and exits, the token follows.
    let _ = conns.spawn(move || {
        reader_loop(stream, &reply_tx, &queue, &shared, &slots);
        drop(token);
    });
}

/// Per-connection read half: frame, validate, resolve, admit.
fn reader_loop(
    mut stream: TcpStream,
    reply_tx: &Sender<Reply>,
    queue: &DeadlineQueue<Job>,
    shared: &Arc<Ingress>,
    slots: &Arc<InflightSlots>,
) {
    let fail = |id: u64, result: Result<ServeResponse, ServeError>| Reply {
        id,
        body: ReplyBody::Answer(result),
        counted: false,
        trace: None,
    };
    let mut framer = FrameReader::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            let _ = reply_tx.send(fail(0, Err(ServeError::Shutdown)));
            break;
        }
        let frame = match framer.poll(&mut stream, WIRE_MAX_FRAME) {
            Ok(Some(frame)) => frame,
            Ok(None) => continue, // read-timeout tick: re-check shutdown
            Err(WireFault::Closed) => break,
            Err(fault @ (WireFault::Oversized { .. } | WireFault::Malformed(_))) => {
                // Protocol violation: tell the client why, then hang up —
                // the stream can no longer be trusted to be in sync.
                shared.metrics.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(fail(0, Err(ServeError::Wire(fault))));
                break;
            }
            Err(_) => break, // transport error: nothing useful to say
        };
        let request = match frame {
            Frame::Request(rf) => rf,
            Frame::StatsRequest(id) => {
                // Observability probe: answered inline under the registry
                // read lock, never admitted to the job queue.
                let snapshot = {
                    let registry = shared.registry.read().expect("registry lock");
                    let cache = registry.cache_stats();
                    let tiers = registry.tier_stats();
                    ServerStats {
                        cache_hits: cache.hits,
                        cache_misses: cache.misses,
                        cache_entries: cache.entries as u64,
                        hot: tiers.hot as u64,
                        warm: tiers.warm as u64,
                        durable: tiers.durable as u64,
                        hot_capacity: tiers.hot_capacity as u64,
                        evictions: tiers.evictions,
                        cold_loads: tiers.cold_loads,
                        quarantined: tiers.quarantined,
                        models: registry.len() as u64,
                        deadline_met: shared.metrics.deadline_met.load(Ordering::Relaxed),
                        deadline_missed: shared.metrics.deadline_missed.load(Ordering::Relaxed),
                        deadline_expired: shared.metrics.deadline_expired.load(Ordering::Relaxed),
                    }
                };
                let _ = reply_tx.send(Reply {
                    id,
                    body: ReplyBody::Stats(snapshot),
                    counted: false,
                    trace: None,
                });
                continue;
            }
            Frame::MetricsRequest(id) => {
                // Text-exposition probe: like STATS, rendered inline by the
                // reader and sent through the reply channel — never
                // admitted to the job queue, so it cannot deadlock behind
                // a full queue or an inflight cap.
                let text = exposition(shared, queue);
                let _ = reply_tx.send(Reply {
                    id,
                    body: ReplyBody::Metrics(text),
                    counted: false,
                    trace: None,
                });
                continue;
            }
            _ => {
                shared.metrics.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(fail(
                    0,
                    Err(ServeError::Wire(WireFault::Malformed(
                        "client sent a non-request frame".into(),
                    ))),
                ));
                break;
            }
        };
        let raw_id = request.id;
        let (id, req) = match request.into_request() {
            Ok(pair) => pair,
            Err(e) => {
                shared.metrics.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(fail(raw_id, Err(e)));
                continue;
            }
        };
        // Resolve + validate at admission time under a read lock, pinning
        // the model version this request will be answered by.
        let resolved = {
            let registry = shared.registry.read().expect("registry lock");
            registry.lookup(&req.model).and_then(|(version, bundle)| {
                validate(&bundle, &req)?;
                Ok((version, bundle))
            })
        };
        let (model_version, bundle) = match resolved {
            Ok(pair) => pair,
            Err(e) => {
                shared.metrics.faulted.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(fail(id, Err(e)));
                continue;
            }
        };
        if !slots.acquire(&shared.shutdown) {
            let _ = reply_tx.send(fail(id, Err(ServeError::Shutdown)));
            break;
        }
        let deadline_ms = req.deadline_ms;
        let job = Job {
            id,
            model: req.model,
            model_version,
            bundle,
            arch: req.arch,
            device: req.device,
            reply: reply_tx.clone(),
        };
        match queue.try_push(job, deadline_ms) {
            Ok(()) => {
                // Inflight gauge: admitted and unanswered; the writer
                // decrements when the counted reply drains.
                shared.telemetry.inflight().inc();
            }
            Err(PushError::Full(_)) => {
                // The queue is the backpressure boundary: reject now with a
                // retry hint instead of buffering anywhere.
                slots.release();
                shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
                let _ = reply_tx.send(fail(
                    id,
                    Err(ServeError::Busy {
                        retry_after_ms: shared.cfg.retry_after_ms,
                    }),
                ));
            }
            Err(PushError::Closed(_)) => {
                slots.release();
                let _ = reply_tx.send(fail(id, Err(ServeError::Shutdown)));
                break;
            }
        }
    }
}

fn validate(bundle: &ModelBundle, req: &ServeRequest) -> Result<(), ServeError> {
    if req.arch.space() != bundle.space() {
        return Err(ServeError::BadQuery(format!(
            "{:?} architecture on a {:?} model",
            req.arch.space(),
            bundle.space()
        )));
    }
    if req.device >= bundle.devices().len() {
        return Err(ServeError::BadQuery(format!(
            "device index {} out of range ({} devices)",
            req.device,
            bundle.devices().len()
        )));
    }
    Ok(())
}

/// Per-connection write half: the only thread that touches the socket's
/// write side, so frames never interleave. Keeps draining after a write
/// failure (client gone) so every admitted job still retires its slot.
/// Records the response-write histogram and commits request traces after
/// the frame lands.
fn writer_loop(
    mut stream: TcpStream,
    reply_rx: Receiver<Reply>,
    slots: &InflightSlots,
    telemetry: &Telemetry,
) {
    let mut sock_alive = true;
    while let Ok(reply) = reply_rx.recv() {
        // The gauge must drop before the response bytes can reach the
        // client: a scrape issued after the last reply was received has
        // to observe a quiescent `nasflat_inflight`, never a stale 1.
        if reply.counted {
            telemetry.inflight().dec();
        }
        if sock_alive {
            let frame = match reply.body {
                ReplyBody::Answer(Ok(ref resp)) => Frame::Response(ResponseFrame {
                    id: reply.id,
                    model_version: resp.model_version,
                    score: resp.score,
                }),
                ReplyBody::Answer(Err(ref e)) => Frame::Error(ErrorFrame::from_error(reply.id, e)),
                ReplyBody::Stats(stats) => Frame::Stats(StatsFrame {
                    id: reply.id,
                    stats,
                }),
                ReplyBody::Metrics(text) => Frame::Metrics(MetricsFrame { id: reply.id, text }),
            };
            if telemetry.is_enabled() {
                let write_start = Instant::now();
                if write_frame(&mut stream, &frame).is_err() {
                    sock_alive = false;
                }
                telemetry.observe_write(write_start.elapsed().as_micros() as u64);
            } else if write_frame(&mut stream, &frame).is_err() {
                sock_alive = false;
            }
        }
        if let Some(mut trace) = reply.trace {
            trace.replied_us = telemetry.now_us();
            telemetry.push_trace(trace);
        }
        if reply.counted {
            slots.release();
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Scheduler worker: block for one deadline-class group (priority order,
/// expired entries split out), then evaluate per model version as
/// mixed-device multi-query tape passes. Queries from different
/// connections share passes here.
fn scheduler_loop(queue: &DeadlineQueue<Job>, shared: &Ingress) {
    let coalesce = shared.cfg.batch.max(1);
    let telemetry = &*shared.telemetry;
    while let Some(drain) = queue.pop_group(coalesce) {
        // One timestamp for the whole drain: every popped entry — expired
        // or live — left the queue at this instant, so the queue-wait
        // histogram counts exactly `queries_served + deadline_expired`
        // observations (busy rejections never enter the queue).
        let dequeued = Instant::now();
        // Queries already overdue at dequeue are retired first: an answer
        // nobody is waiting for is not worth a tape pass.
        for entry in drain.expired {
            let missed_by_ms = entry.deadline.map_or(0, |d| {
                dequeued
                    .saturating_duration_since(d)
                    .as_millis()
                    .min(u32::MAX as u128) as u32
            });
            shared
                .metrics
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            telemetry
                .observe_queue_wait(dequeued.duration_since(entry.admitted).as_micros() as u64);
            let job = entry.item;
            let trace = telemetry.is_enabled().then(|| RequestTrace {
                request_id: job.id,
                model: job.model.clone(),
                admitted_us: telemetry.us_at(entry.admitted),
                dequeued_us: telemetry.us_at(dequeued),
                evaluated_us: 0,
                replied_us: 0,
                verdict: DeadlineVerdict::Expired,
            });
            let _ = job.reply.send(Reply {
                id: job.id,
                body: ReplyBody::Answer(Err(ServeError::DeadlineExceeded { missed_by_ms })),
                counted: true,
                trace,
            });
        }
        let group: Vec<QueueEntry<Job>> = drain.live;
        if group.is_empty() {
            continue;
        }
        telemetry.observe_batch_size(group.len() as u64);
        for entry in &group {
            telemetry
                .observe_queue_wait(dequeued.duration_since(entry.admitted).as_micros() as u64);
        }
        // Evaluate per model version, preserving pop order within each
        // sub-group (stable grouping keeps the tape layout deterministic
        // given the same coalesced set).
        let mut done = vec![false; group.len()];
        for start in 0..group.len() {
            if done[start] {
                continue;
            }
            let assembly_start = Instant::now();
            let version = group[start].item.model_version;
            let members: Vec<usize> = (start..group.len())
                .filter(|&i| !done[i] && group[i].item.model_version == version)
                .collect();
            for &i in &members {
                done[i] = true;
            }
            let bundle = group[members[0]].item.bundle.clone();
            let archs: Vec<&Arch> = members.iter().map(|&i| &group[i].item.arch).collect();
            let devices: Vec<usize> = members.iter().map(|&i| group[i].item.device).collect();
            let mut sessions = bundle.open_sessions();
            let eval_start = Instant::now();
            let scores = bundle.score_batch_in(&mut sessions, &archs, &devices);
            let finished = Instant::now();
            telemetry
                .observe_assembly(eval_start.duration_since(assembly_start).as_micros() as u64);
            telemetry.observe_eval(finished.duration_since(eval_start).as_micros() as u64);
            telemetry.observe_group_size(members.len() as u64);
            if telemetry.is_enabled() {
                let mut delta = SessionCounters::default();
                for s in &sessions {
                    delta = delta.merge(s.counters());
                }
                telemetry.add_sessions(&delta);
            }
            shared.metrics.groups.fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .max_group
                .fetch_max(members.len() as u64, Ordering::Relaxed);
            shared
                .metrics
                .served
                .fetch_add(members.len() as u64, Ordering::Relaxed);
            // Credit the per-model serve counter *before* the replies go
            // out, so a scrape racing a client's tally can only see the
            // counter ahead of (never behind) the answers it observed.
            shared
                .registry
                .read()
                .expect("registry lock")
                .record_served(&group[members[0]].item.model, members.len() as u64);
            for (&i, score) in members.iter().zip(scores) {
                let entry = &group[i];
                let job = &entry.item;
                // Deadline accounting: a query evaluated late still gets
                // its score, but counts as missed instead of met.
                let verdict = match entry.deadline {
                    Some(d) if finished <= d => {
                        shared.metrics.deadline_met.fetch_add(1, Ordering::Relaxed);
                        DeadlineVerdict::Met
                    }
                    Some(_) => {
                        shared
                            .metrics
                            .deadline_missed
                            .fetch_add(1, Ordering::Relaxed);
                        DeadlineVerdict::Missed
                    }
                    None => DeadlineVerdict::BestEffort,
                };
                let trace = telemetry.is_enabled().then(|| RequestTrace {
                    request_id: job.id,
                    model: job.model.clone(),
                    admitted_us: telemetry.us_at(entry.admitted),
                    dequeued_us: telemetry.us_at(dequeued),
                    evaluated_us: telemetry.us_at(finished),
                    replied_us: 0,
                    verdict,
                });
                // A send error means the connection's writer is gone (the
                // client hung up); the answer is simply dropped.
                let _ = job.reply.send(Reply {
                    id: job.id,
                    body: ReplyBody::Answer(Ok(ServeResponse::new(score, job.model_version))),
                    counted: true,
                    trace,
                });
            }
        }
    }
}

/// Renders the full Prometheus-style text exposition: the telemetry
/// histograms/gauges, the live queue-depth and connection gauges, the
/// ingress ledger counters, the registry cache/tier families, and the
/// per-model serve/hit/miss counters. Pure reads — rendering a scrape
/// never perturbs what it measures beyond two registry read-locks.
fn exposition(shared: &Ingress, queue: &DeadlineQueue<Job>) -> String {
    let mut out = String::with_capacity(4096);
    shared.telemetry.render_into(&mut out);
    render_gauge(&mut out, "nasflat_queue_depth", queue.len() as u64);
    render_gauge(
        &mut out,
        "nasflat_connections_live",
        shared.live_conns.load(Ordering::Acquire) as u64,
    );
    let m = shared.metrics_snapshot();
    render_counter(
        &mut out,
        "nasflat_connections_accepted_total",
        m.connections_accepted,
    );
    render_counter(
        &mut out,
        "nasflat_connections_refused_total",
        m.connections_refused,
    );
    render_counter(&mut out, "nasflat_queries_served_total", m.queries_served);
    render_counter(&mut out, "nasflat_busy_rejections_total", m.busy_rejections);
    render_counter(&mut out, "nasflat_faults_total", m.faults);
    render_counter(&mut out, "nasflat_groups_total", m.groups);
    render_gauge(&mut out, "nasflat_max_group", m.max_group);
    render_counter(&mut out, "nasflat_deadline_met_total", m.deadline_met);
    render_counter(&mut out, "nasflat_deadline_missed_total", m.deadline_missed);
    render_counter(
        &mut out,
        "nasflat_deadline_expired_total",
        m.deadline_expired,
    );
    let registry = shared.registry.read().expect("registry lock");
    let cache = registry.cache_stats();
    render_counter(&mut out, "nasflat_cache_hits_total", cache.hits);
    render_counter(&mut out, "nasflat_cache_misses_total", cache.misses);
    render_gauge(&mut out, "nasflat_cache_entries", cache.entries as u64);
    let tiers = registry.tier_stats();
    render_gauge(&mut out, "nasflat_store_hot", tiers.hot as u64);
    render_gauge(&mut out, "nasflat_store_warm", tiers.warm as u64);
    render_gauge(&mut out, "nasflat_store_durable", tiers.durable as u64);
    render_gauge(
        &mut out,
        "nasflat_store_hot_capacity",
        tiers.hot_capacity as u64,
    );
    render_counter(&mut out, "nasflat_store_evictions_total", tiers.evictions);
    render_counter(&mut out, "nasflat_store_cold_loads_total", tiers.cold_loads);
    render_counter(
        &mut out,
        "nasflat_store_quarantined_total",
        tiers.quarantined,
    );
    render_gauge(&mut out, "nasflat_models", registry.len() as u64);
    let per_model = registry.model_stats();
    drop(registry);
    use std::fmt::Write as _;
    let _ = writeln!(out, "# TYPE nasflat_model_served_total counter");
    for (name, c) in &per_model {
        render_labelled(
            &mut out,
            "nasflat_model_served_total",
            "model",
            name,
            c.served,
        );
    }
    let _ = writeln!(out, "# TYPE nasflat_model_cache_hits_total counter");
    for (name, c) in &per_model {
        render_labelled(
            &mut out,
            "nasflat_model_cache_hits_total",
            "model",
            name,
            c.cache_hits,
        );
    }
    let _ = writeln!(out, "# TYPE nasflat_model_cache_misses_total counter");
    for (name, c) in &per_model {
        render_labelled(
            &mut out,
            "nasflat_model_cache_misses_total",
            "model",
            name,
            c.cache_misses,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_slots_block_at_capacity_and_release() {
        let slots = Arc::new(InflightSlots::new(2));
        let shutdown = AtomicBool::new(false);
        assert!(slots.acquire(&shutdown));
        assert!(slots.acquire(&shutdown));
        // Third acquire blocks until another thread releases.
        let blocked = {
            let slots = slots.clone();
            std::thread::spawn(move || {
                let shutdown = AtomicBool::new(false);
                slots.acquire(&shutdown)
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!blocked.is_finished(), "acquire should block at capacity");
        slots.release();
        assert!(blocked.join().unwrap());
    }

    #[test]
    fn inflight_acquire_aborts_on_shutdown() {
        let slots = InflightSlots::new(1);
        let shutdown = AtomicBool::new(false);
        assert!(slots.acquire(&shutdown));
        shutdown.store(true, Ordering::Release);
        // Full + shutdown: acquire must give up rather than block forever.
        assert!(!slots.acquire(&shutdown));
    }
}
