//! `nasflat-tasks`: latency-prediction tasks and device-set design (§6.1).
//!
//! A *task* is a (train devices, test devices) split over one search space.
//! The crate ships:
//!
//! - the paper's 12 evaluation tasks ([`paper_tasks`]): the legacy
//!   high-correlation `ND`/`FD`, the adversarial `NA`/`FA`, and the
//!   algorithmically partitioned `N1`–`N4` / `F1`–`F4` (Tables 24–26);
//! - [`CorrelationMatrix`]: cross-device Spearman correlations (the data
//!   behind paper Tables 21–22 and the difficulty measure per task);
//! - [`kernighan_lin`] / [`partition_devices`] / [`generate_task`]: the
//!   paper's Algorithm 1 for producing fresh low-correlation splits.
//!
//! # Example
//! ```
//! use nasflat_space::Space;
//! use nasflat_tasks::{paper_task, CorrelationMatrix};
//!
//! let n1 = paper_task("N1").expect("N1 is a paper task");
//! let corr = CorrelationMatrix::for_space(Space::Nb201, 100, 0);
//! let difficulty = corr.task_train_test(&n1);
//! assert!(difficulty < 0.95); // N1 is a low-correlation (hard) task
//! ```

#![warn(missing_docs)]

mod corr;
mod partition;
mod task;

pub use corr::{probe_pool, CorrelationMatrix};
pub use partition::{generate_task, kernighan_lin, partition_devices, PartitionError};
pub use task::{fbnet_tasks, nb201_tasks, paper_task, paper_tasks, Task};
