//! The tiered bundle store: **hot / warm / durable** model residency.
//!
//! A fleet-scale registry cannot keep thousands of decoded predictors on
//! the heap. [`BundleStore`] holds each named model in exactly one of three
//! tiers and moves it between them on demand:
//!
//! ```text
//!            fetch (decode weights)            publish / load
//!   durable ───────────────► hot ◄──────────────── operator
//!      │                      │
//!      │ warm (parse header)  │ LRU eviction over capacity
//!      ▼                      ▼
//!    warm  ◄──────────────── warm (metadata rebuilt in memory)
//! ```
//!
//! - **durable** — an on-disk directory of `NFB1` files plus a small
//!   `index.nfbi` mapping names to filenames. Every write goes through a
//!   temp file followed by an atomic rename, so a crash mid-publish leaves
//!   either the old bundle or the new one, never a torn file. A file that
//!   fails to parse is moved to a `quarantine/` subdirectory and its entry
//!   dropped — corruption surfaces as a clean [`ServeError::Bundle`] chain,
//!   never a panic, and never a retry loop on the same bad bytes.
//! - **warm** — a parsed [`BundleMeta`]: the bundle header and first
//!   member's metadata with every weight blob skipped via seek. A warm
//!   entry costs a few hundred bytes and can answer routing questions
//!   (space, device roster, member count) without touching the weights.
//! - **hot** — a fully decoded [`Arc<ModelBundle>`] ready to predict. The
//!   hot tier has a configurable capacity; exceeding it demotes the
//!   least-recently-fetched *disk-backed* entry back to warm. Because hot
//!   bundles are handed out as `Arc`s, eviction is **pin-safe**: a predict
//!   already holding the `Arc` keeps the decoded model alive until it
//!   finishes, and the later reload decodes the same bytes to a
//!   bit-identical model, so eviction can never change a result.
//!
//! Entries without disk backing (an in-memory store, or a memory-only
//! publish) are never evicted — dropping the only copy would lose the
//! model, so the capacity bound applies to what can be faulted back in.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nasflat_tensor::{ByteReader, ByteWriter};

use crate::bundle::{BundleError, BundleMeta, ModelBundle};
use crate::error::ServeError;
use nasflat_core::ModelIoError;

/// Magic prefix of the store index ("NasFlat Bundle Index v1").
const INDEX_MAGIC: &[u8; 4] = b"NFBI";

/// Index version written by this build.
const INDEX_VERSION: u32 = 1;

/// Index filename inside a store directory.
const INDEX_FILE: &str = "index.nfbi";

/// Subdirectory corrupt bundle files are moved into.
const QUARANTINE_DIR: &str = "quarantine";

/// Which tier a store entry currently occupies.
enum Tier {
    /// Fully decoded and ready to predict.
    Hot(Arc<ModelBundle>),
    /// Metadata parsed, weights still on disk (or reconstructible there).
    Warm(Arc<BundleMeta>),
    /// Known only through the index; nothing parsed yet.
    Durable,
}

struct Entry {
    /// Process-unique version; bumped only by publish, never by tier moves,
    /// so cached results stay valid across evict/reload cycles.
    version: u64,
    /// Backing file, when the entry is durable.
    file: Option<PathBuf>,
    tier: Tier,
    /// Recency stamp of the last fetch (hot entries only participate in
    /// LRU selection).
    touch: u64,
}

struct StoreState {
    entries: HashMap<String, Entry>,
    tick: u64,
    next_version: u64,
}

impl StoreState {
    fn next_touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn next_version(&mut self) -> u64 {
        let v = self.next_version;
        self.next_version += 1;
        v
    }

    fn hot_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.tier, Tier::Hot(_)))
            .count()
    }
}

/// Occupancy and movement counters of a [`BundleStore`] — the tier half of
/// the numbers the `STATS` wire op reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    /// Entries currently holding a decoded bundle.
    pub hot: usize,
    /// Entries currently holding only parsed metadata.
    pub warm: usize,
    /// Entries with an on-disk backing file (any tier).
    pub durable: usize,
    /// Hot-tier capacity (0 = unbounded).
    pub hot_capacity: usize,
    /// Hot→warm demotions forced by the capacity bound.
    pub evictions: u64,
    /// Full weight decodes served from disk (durable/warm → hot).
    pub cold_loads: u64,
    /// Bundle files moved to quarantine after failing to parse.
    pub quarantined: u64,
}

/// The result of publishing a bundle into a [`BundleStore`].
#[derive(Debug, Clone)]
pub struct StoreUpdate {
    /// Version assigned to the newly published bundle.
    pub version: u64,
    /// Version the publish replaced, when the name already existed.
    pub replaced: Option<u64>,
    /// The now-hot bundle.
    pub bundle: Arc<ModelBundle>,
}

/// A hot/warm/durable tiered home for named [`ModelBundle`]s.
///
/// All methods take `&self`: the store is internally synchronized, so a
/// registry can promote and evict behind a shared read lock. See the
/// [crate docs](crate) for the tier contracts.
pub struct BundleStore {
    dir: Option<PathBuf>,
    hot_capacity: usize,
    state: Mutex<StoreState>,
    evictions: AtomicU64,
    cold_loads: AtomicU64,
    quarantined: AtomicU64,
}

impl std::fmt::Debug for BundleStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BundleStore")
            .field("dir", &self.dir)
            .field("hot_capacity", &self.hot_capacity)
            .finish_non_exhaustive()
    }
}

impl BundleStore {
    /// A store without durable backing: every published bundle lives in the
    /// hot tier for the life of the process.
    ///
    /// `hot_capacity` is kept for symmetry but cannot force evictions —
    /// demoting an entry with no backing file would lose the model — so a
    /// memory-only store is effectively unbounded.
    pub fn in_memory(hot_capacity: usize) -> Self {
        BundleStore {
            dir: None,
            hot_capacity,
            state: Mutex::new(StoreState {
                entries: HashMap::new(),
                tick: 0,
                next_version: 1,
            }),
            evictions: AtomicU64::new(0),
            cold_loads: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// Opens (creating if necessary) a durable store rooted at `dir`.
    ///
    /// Existing bundles listed in the directory's index register in the
    /// **durable** tier — nothing is parsed or decoded until first use.
    /// Index entries whose backing file has vanished are dropped.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the directory cannot be created or the index
    /// cannot be read; [`ServeError::Bundle`] when the index file itself is
    /// malformed.
    pub fn open(dir: impl AsRef<Path>, hot_capacity: usize) -> Result<Self, ServeError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut entries = HashMap::new();
        let mut next_version = 1;
        for (name, filename) in read_index(&dir)? {
            let path = dir.join(&filename);
            if !path.is_file() {
                continue; // stale index row; rewritten on next mutation
            }
            entries.insert(
                name,
                Entry {
                    version: next_version,
                    file: Some(path),
                    tier: Tier::Durable,
                    touch: 0,
                },
            );
            next_version += 1;
        }
        Ok(BundleStore {
            dir: Some(dir),
            hot_capacity,
            state: Mutex::new(StoreState {
                entries,
                tick: 0,
                next_version,
            }),
            evictions: AtomicU64::new(0),
            cold_loads: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The durable directory, when the store has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The hot-tier capacity (0 = unbounded).
    pub fn hot_capacity(&self) -> usize {
        self.hot_capacity
    }

    /// Registered model names, unordered.
    pub fn names(&self) -> Vec<String> {
        self.state.lock().unwrap().entries.keys().cloned().collect()
    }

    /// Number of registered models across all tiers.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// Whether no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a model of this name is registered (in any tier).
    pub fn contains(&self, name: &str) -> bool {
        self.state.lock().unwrap().entries.contains_key(name)
    }

    /// Tier occupancy and movement counters.
    pub fn stats(&self) -> TierStats {
        let state = self.state.lock().unwrap();
        let mut hot = 0;
        let mut warm = 0;
        let mut durable = 0;
        for e in state.entries.values() {
            match e.tier {
                Tier::Hot(_) => hot += 1,
                Tier::Warm(_) => warm += 1,
                Tier::Durable => {}
            }
            if e.file.is_some() {
                durable += 1;
            }
        }
        TierStats {
            hot,
            warm,
            durable,
            hot_capacity: self.hot_capacity,
            evictions: self.evictions.load(Ordering::Relaxed),
            cold_loads: self.cold_loads.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Publishes a bundle under `name`, replacing any previous version.
    ///
    /// On a durable store the bundle is first written to disk through a
    /// temp-file + atomic-rename sequence and the index updated, then the
    /// decoded bundle enters the hot tier (publish implies imminent use).
    /// Exceeding the hot capacity demotes the least-recently-fetched
    /// disk-backed entry to warm.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the write-through fails; the in-memory state
    /// is left unchanged in that case.
    pub fn publish(&self, name: &str, bundle: ModelBundle) -> Result<StoreUpdate, ServeError> {
        let mut state = self.state.lock().unwrap();
        let file = match &self.dir {
            None => None,
            Some(dir) => {
                let filename = self.choose_filename(&state, name);
                let path = dir.join(&filename);
                write_atomic(dir, &path, &bundle.to_bytes())?;
                Some(path)
            }
        };
        let version = state.next_version();
        let touch = state.next_touch();
        let arc = Arc::new(bundle);
        let replaced = state
            .entries
            .insert(
                name.to_string(),
                Entry {
                    version,
                    file,
                    tier: Tier::Hot(Arc::clone(&arc)),
                    touch,
                },
            )
            .map(|old| old.version);
        if let Some(dir) = &self.dir {
            write_index(dir, &state)?;
        }
        self.evict_excess(&mut state);
        Ok(StoreUpdate {
            version,
            replaced,
            bundle: arc,
        })
    }

    /// Fetches the decoded bundle for `name`, promoting through the tiers
    /// as needed: durable entries get their metadata parsed (durable→warm),
    /// then their weights decoded (warm→hot). The returned `Arc` pins the
    /// decoded model for as long as the caller holds it, independent of any
    /// later eviction.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] for unregistered names;
    /// [`ServeError::Bundle`] when the backing file is corrupt (the file is
    /// quarantined and the entry dropped); [`ServeError::Io`] on filesystem
    /// failure (the entry is kept — the fault may be transient).
    pub fn fetch(&self, name: &str) -> Result<(u64, Arc<ModelBundle>), ServeError> {
        let mut state = self.state.lock().unwrap();
        let entry = state
            .entries
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let version = entry.version;
        let path = match &entry.tier {
            Tier::Hot(bundle) => {
                let bundle = Arc::clone(bundle);
                let touch = state.next_touch();
                state.entries.get_mut(name).expect("present").touch = touch;
                return Ok((version, bundle));
            }
            Tier::Warm(_) | Tier::Durable => entry
                .file
                .clone()
                .expect("non-hot entries always have a backing file"),
        };
        // Durable → warm: parse the metadata prefix (and surface corruption
        // on the cheap header read before paying for the weight decode).
        if matches!(entry.tier, Tier::Durable) {
            let meta = match BundleMeta::load_path(&path) {
                Ok(meta) => meta,
                Err(e) => return Err(self.reject_file(&mut state, name, e)),
            };
            state.entries.get_mut(name).expect("present").tier = Tier::Warm(Arc::new(meta));
        }
        // Warm → hot: decode the weights.
        let bundle = match ModelBundle::load_path(&path) {
            Ok(bundle) => Arc::new(bundle),
            Err(e) => return Err(self.reject_file(&mut state, name, e)),
        };
        self.cold_loads.fetch_add(1, Ordering::Relaxed);
        let touch = state.next_touch();
        let entry = state.entries.get_mut(name).expect("present");
        entry.tier = Tier::Hot(Arc::clone(&bundle));
        entry.touch = touch;
        self.evict_excess(&mut state);
        Ok((version, bundle))
    }

    /// The warm view of `name`: parsed metadata without decoding weights.
    /// Promotes durable→warm; hot and warm entries answer from memory.
    ///
    /// # Errors
    /// Same conditions as [`BundleStore::fetch`], minus the weight decode.
    pub fn warm(&self, name: &str) -> Result<Arc<BundleMeta>, ServeError> {
        let mut state = self.state.lock().unwrap();
        let entry = state
            .entries
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        match &entry.tier {
            Tier::Hot(bundle) => Ok(Arc::new(BundleMeta::of(bundle))),
            Tier::Warm(meta) => Ok(Arc::clone(meta)),
            Tier::Durable => {
                let path = entry
                    .file
                    .clone()
                    .expect("durable entries always have a backing file");
                let meta = match BundleMeta::load_path(&path) {
                    Ok(meta) => Arc::new(meta),
                    Err(e) => return Err(self.reject_file(&mut state, name, e)),
                };
                state.entries.get_mut(name).expect("present").tier = Tier::Warm(Arc::clone(&meta));
                Ok(meta)
            }
        }
    }

    /// The current version of `name`, when registered.
    pub fn version_of(&self, name: &str) -> Option<u64> {
        self.state
            .lock()
            .unwrap()
            .entries
            .get(name)
            .map(|e| e.version)
    }

    /// Removes `name` from every tier, deleting its backing file and index
    /// row. Returns the removed version, or `None` if the name was not
    /// registered. In-flight predicts holding the bundle's `Arc` are
    /// unaffected.
    ///
    /// # Errors
    /// [`ServeError::Io`] when the file or index cannot be updated; the
    /// entry is removed from memory regardless.
    pub fn remove(&self, name: &str) -> Result<Option<u64>, ServeError> {
        let mut state = self.state.lock().unwrap();
        let Some(entry) = state.entries.remove(name) else {
            return Ok(None);
        };
        if let Some(path) = &entry.file {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e.into()),
            }
        }
        if let Some(dir) = &self.dir {
            write_index(dir, &state)?;
        }
        Ok(Some(entry.version))
    }

    /// Demotes hot entries (LRU-first) until the hot tier fits its
    /// capacity. Only disk-backed entries are candidates; the demoted
    /// metadata is rebuilt from the in-memory bundle, so demotion never
    /// touches the disk.
    fn evict_excess(&self, state: &mut StoreState) {
        if self.hot_capacity == 0 {
            return;
        }
        while state.hot_count() > self.hot_capacity {
            let victim = state
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.tier, Tier::Hot(_)) && e.file.is_some())
                .min_by_key(|(_, e)| e.touch)
                .map(|(name, _)| name.clone());
            let Some(name) = victim else {
                break; // nothing evictable (memory-only residents)
            };
            let entry = state.entries.get_mut(&name).expect("victim present");
            if let Tier::Hot(bundle) = &entry.tier {
                entry.tier = Tier::Warm(Arc::new(BundleMeta::of(bundle)));
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Handles a file that failed to parse: grammar-level failures move the
    /// file to quarantine and drop the entry (the bytes will never parse);
    /// I/O failures keep both (the fault may be transient). Returns the
    /// error to propagate.
    fn reject_file(&self, state: &mut StoreState, name: &str, err: ServeError) -> ServeError {
        if !matches!(err, ServeError::Bundle(_)) {
            return err;
        }
        let Some(entry) = state.entries.remove(name) else {
            return err;
        };
        if let (Some(dir), Some(path)) = (&self.dir, &entry.file) {
            let _ = quarantine_file(dir, path);
            let _ = write_index(dir, state);
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
        err
    }

    /// A filename for `name` that no other entry uses: a sanitized prefix
    /// plus a hash suffix, so distinct names never fight over one file and
    /// republishes overwrite in place.
    fn choose_filename(&self, state: &StoreState, name: &str) -> String {
        if let Some(existing) = state.entries.get(name).and_then(|e| e.file.as_ref()) {
            if let Some(f) = existing.file_name().and_then(|f| f.to_str()) {
                return f.to_string();
            }
        }
        let sanitized: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .take(64)
            .collect();
        let taken: std::collections::HashSet<&str> = state
            .entries
            .values()
            .filter_map(|e| e.file.as_ref())
            .filter_map(|p| p.file_name().and_then(|f| f.to_str()))
            .collect();
        let base = format!("{sanitized}-{:08x}", fnv1a64(name.as_bytes()) as u32);
        let mut candidate = format!("{base}.nfb1");
        let mut bump = 1u32;
        while taken.contains(candidate.as_str()) {
            candidate = format!("{base}-{bump}.nfb1");
            bump += 1;
        }
        candidate
    }
}

/// 64-bit FNV-1a over `bytes` — a tiny stable hash for filename suffixes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` via a temp file in `dir` plus an atomic rename:
/// a crash leaves either the previous file or the complete new one.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let tmp = dir.join(format!(
        ".tmp-{}",
        path.file_name()
            .and_then(|f| f.to_str())
            .unwrap_or("bundle.nfb1")
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        ServeError::Io(e)
    })
}

/// Moves a corrupt bundle file into the quarantine subdirectory, bumping a
/// numeric suffix if a previous quarantine already claimed the name.
fn quarantine_file(dir: &Path, path: &Path) -> std::io::Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    std::fs::create_dir_all(&qdir)?;
    let filename = path
        .file_name()
        .and_then(|f| f.to_str())
        .unwrap_or("bundle.nfb1")
        .to_string();
    let mut target = qdir.join(&filename);
    let mut bump = 1u32;
    while target.exists() {
        target = qdir.join(format!("{filename}.{bump}"));
        bump += 1;
    }
    std::fs::rename(path, target)
}

/// Reads the store index: `(name, filename)` rows in stored order. A
/// missing index is an empty store.
fn read_index(dir: &Path) -> Result<Vec<(String, String)>, ServeError> {
    let path = dir.join(INDEX_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |detail: String| {
        ServeError::Bundle(BundleError::Model(ModelIoError::Corrupt(format!(
            "store index: {detail}"
        ))))
    };
    let mut r = ByteReader::new(&bytes);
    if r.get_raw(4)
        .map_err(|_| corrupt("truncated magic".into()))?
        != INDEX_MAGIC
    {
        return Err(corrupt("bad magic".into()));
    }
    let version = r.get_u32().map_err(|e| corrupt(e.to_string()))?;
    if version != INDEX_VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let count = r.get_len().map_err(|e| corrupt(e.to_string()))?;
    if count > r.remaining() / 8 {
        return Err(corrupt("declared row count exceeds file size".into()));
    }
    let mut rows = Vec::with_capacity(count);
    for _ in 0..count {
        let name = r.get_str().map_err(|e| corrupt(e.to_string()))?.to_string();
        let file = r.get_str().map_err(|e| corrupt(e.to_string()))?.to_string();
        rows.push((name, file));
    }
    if !r.is_empty() {
        return Err(corrupt(format!("{} trailing bytes", r.remaining())));
    }
    Ok(rows)
}

/// Atomically rewrites the index from the disk-backed entries, sorted by
/// name so the file is deterministic for a given store population.
fn write_index(dir: &Path, state: &StoreState) -> Result<(), ServeError> {
    let mut rows: Vec<(&String, &PathBuf)> = state
        .entries
        .iter()
        .filter_map(|(name, e)| e.file.as_ref().map(|f| (name, f)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let mut w = ByteWriter::new();
    w.put_raw(INDEX_MAGIC);
    w.put_u32(INDEX_VERSION);
    w.put_len(rows.len());
    for (name, file) in rows {
        w.put_str(name);
        w.put_str(file.file_name().and_then(|f| f.to_str()).unwrap_or(""));
    }
    write_atomic(dir, &dir.join(INDEX_FILE), &w.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nasflat_core::{LatencyPredictor, PredictorConfig};
    use nasflat_space::{Arch, Space};

    fn bundle(seed: u64) -> ModelBundle {
        let mut cfg = PredictorConfig::quick().with_seed(seed);
        cfg.op_dim = 8;
        cfg.hw_dim = 8;
        cfg.node_dim = 8;
        cfg.ophw_gnn_dims = vec![12];
        cfg.ophw_mlp_dims = vec![12];
        cfg.gnn_dims = vec![12];
        cfg.head_dims = vec![16];
        let p = LatencyPredictor::new(Space::Nb201, vec!["a".into(), "b".into()], 0, cfg);
        ModelBundle::single(p).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nasflat_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_publishes_and_fetches() {
        let store = BundleStore::in_memory(1);
        let up = store.publish("m1", bundle(1)).unwrap();
        assert_eq!(up.version, 1);
        assert!(up.replaced.is_none());
        let up2 = store.publish("m2", bundle(2)).unwrap();
        assert_eq!(up2.version, 2);
        // Capacity 1 but nothing is disk-backed: no eviction possible.
        let s = store.stats();
        assert_eq!((s.hot, s.warm, s.durable, s.evictions), (2, 0, 0, 0));
        let (v, b) = store.fetch("m1").unwrap();
        assert_eq!(v, 1);
        let arch = Arch::nb201_from_index(7);
        assert_eq!(
            b.predict_one(&arch, 0).to_bits(),
            up.bundle.predict_one(&arch, 0).to_bits()
        );
        assert!(matches!(
            store.fetch("absent"),
            Err(ServeError::UnknownModel(_))
        ));
    }

    #[test]
    fn durable_store_round_trips_through_reopen() {
        let dir = tmp_dir("reopen");
        let arch = Arch::nb201_from_index(77);
        let expect: Vec<u32> = {
            let store = BundleStore::open(&dir, 0).unwrap();
            (0..3u64)
                .map(|i| {
                    let up = store.publish(&format!("m{i}"), bundle(i)).unwrap();
                    up.bundle.predict_one(&arch, 0).to_bits()
                })
                .collect()
        };
        // A fresh store over the same dir sees every model, durable-only.
        let store = BundleStore::open(&dir, 0).unwrap();
        assert_eq!(store.len(), 3);
        let s = store.stats();
        assert_eq!((s.hot, s.warm, s.durable), (0, 0, 3));
        for (i, &bits) in expect.iter().enumerate() {
            let (_, b) = store.fetch(&format!("m{i}")).unwrap();
            assert_eq!(b.predict_one(&arch, 0).to_bits(), bits, "model {i}");
        }
        assert_eq!(store.stats().cold_loads, 3);
        // No temp files remain after atomic publishes.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_promotion_parses_metadata_only() {
        let dir = tmp_dir("warm");
        {
            let store = BundleStore::open(&dir, 0).unwrap();
            store.publish("m", bundle(5)).unwrap();
        }
        let store = BundleStore::open(&dir, 0).unwrap();
        let meta = store.warm("m").unwrap();
        assert_eq!(meta.space(), Space::Nb201);
        assert_eq!(meta.devices().len(), 2);
        let s = store.stats();
        assert_eq!((s.hot, s.warm, s.cold_loads), (0, 1, 0));
        // Fetch then completes the promotion to hot.
        store.fetch("m").unwrap();
        let s = store.stats();
        assert_eq!((s.hot, s.warm, s.cold_loads), (1, 0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_demotes_lru_and_reload_is_bit_identical() {
        let dir = tmp_dir("evict");
        let store = BundleStore::open(&dir, 2).unwrap();
        let arch = Arch::nb201_from_index(123);
        let bits: Vec<u32> = (0..3u64)
            .map(|i| {
                store
                    .publish(&format!("m{i}"), bundle(10 + i))
                    .unwrap()
                    .bundle
                    .predict_one(&arch, 1)
                    .to_bits()
            })
            .collect();
        // Publishing three into capacity 2 demoted the LRU entry (m0).
        let s = store.stats();
        assert_eq!((s.hot, s.warm, s.evictions), (2, 1, 1));
        // Pin-during-predict: hold m1's Arc, force its eviction, and the
        // pinned instance still predicts.
        let (_, pinned) = store.fetch("m1").unwrap();
        let (_, b0) = store.fetch("m0").unwrap(); // cold reload, evicts m2
        assert_eq!(b0.predict_one(&arch, 1).to_bits(), bits[0]);
        let (_, b2) = store.fetch("m2").unwrap(); // evicts m1 (LRU after the m1 touch... m1 touched most recently before m0/m2)
        assert_eq!(b2.predict_one(&arch, 1).to_bits(), bits[2]);
        assert_eq!(pinned.predict_one(&arch, 1).to_bits(), bits[1]);
        // Reload of the evicted m1 is bit-identical.
        let (_, b1) = store.fetch("m1").unwrap();
        assert_eq!(b1.predict_one(&arch, 1).to_bits(), bits[1]);
        assert!(store.stats().evictions >= 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_is_quarantined_not_panicked() {
        let dir = tmp_dir("quarantine");
        let filename;
        {
            let store = BundleStore::open(&dir, 0).unwrap();
            store.publish("bad", bundle(9)).unwrap();
            let state = store.state.lock().unwrap();
            filename = state.entries["bad"]
                .file
                .clone()
                .unwrap()
                .file_name()
                .unwrap()
                .to_string_lossy()
                .into_owned();
        }
        // Truncate the file on disk.
        let path = dir.join(&filename);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let store = BundleStore::open(&dir, 0).unwrap();
        let err = store.fetch("bad").unwrap_err();
        assert!(matches!(err, ServeError::Bundle(_)), "{err}");
        // The file moved to quarantine and the entry is gone.
        assert!(!path.exists());
        assert!(dir.join(QUARANTINE_DIR).join(&filename).exists());
        assert_eq!(store.stats().quarantined, 1);
        assert!(matches!(
            store.fetch("bad"),
            Err(ServeError::UnknownModel(_))
        ));
        // A reopened store no longer lists it either.
        let store = BundleStore::open(&dir, 0).unwrap();
        assert!(!store.contains("bad"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_file_and_index_row() {
        let dir = tmp_dir("remove");
        let store = BundleStore::open(&dir, 0).unwrap();
        store.publish("gone", bundle(3)).unwrap();
        assert!(store.remove("gone").unwrap().is_some());
        assert!(store.remove("gone").unwrap().is_none());
        let store = BundleStore::open(&dir, 0).unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_swap_reuses_the_backing_file() {
        let dir = tmp_dir("swap");
        let store = BundleStore::open(&dir, 0).unwrap();
        let up1 = store.publish("m", bundle(1)).unwrap();
        let up2 = store.publish("m", bundle(2)).unwrap();
        assert_eq!(up2.replaced, Some(up1.version));
        assert!(up2.version > up1.version);
        // One bundle file + the index: the swap overwrote in place.
        let files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".nfb1"))
            .collect();
        assert_eq!(files.len(), 1, "{files:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
