//! Predictor and training hyperparameters.
//!
//! Defaults follow the paper's Table 20 (found there with 80 Optuna
//! iterations). [`PredictorConfig::quick`] is a reduced-budget profile for
//! CPU-only test/bench runs; it keeps every architectural feature but shrinks
//! widths and epochs (EXPERIMENTS.md records which profile produced which
//! numbers).

use nasflat_encode::EncodingKind;

/// Which graph-neural-network module the predictor stacks (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnModuleKind {
    /// Dense Graph Flow: residual gated GCN (GATES, Eq. 1).
    Dgf,
    /// Graph attention with operation gating and LayerNorm (Eq. 2–3).
    Gat,
    /// Per-layer average of DGF and GAT outputs (the paper's final choice).
    Ensemble,
}

impl GnnModuleKind {
    /// Display name matching the paper's Table 5.
    pub fn label(self) -> &'static str {
        match self {
            GnnModuleKind::Dgf => "DGF",
            GnnModuleKind::Gat => "GAT",
            GnnModuleKind::Ensemble => "Ensemble",
        }
    }
}

/// Training loss (the paper uses pairwise hinge; MSE kept for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LossKind {
    /// Pairwise hinge ranking loss (Ning et al. 2022).
    PairwiseHinge,
    /// Mean squared error on normalized log-latency.
    Mse,
}

/// Full predictor + training configuration.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Operation-embedding width (Table 20: 48).
    pub op_dim: usize,
    /// Hardware-embedding width (Table 20: 48, tied to `op_dim`).
    pub hw_dim: usize,
    /// Node-embedding width (Table 20: 48).
    pub node_dim: usize,
    /// Hidden widths of the small operation–hardware GNN (Table 20: [128, 128]).
    pub ophw_gnn_dims: Vec<usize>,
    /// Hidden widths of the op–hw refinement MLP (Table 20: `[128]`).
    pub ophw_mlp_dims: Vec<usize>,
    /// Hidden widths of the main GNN (Table 20: [128, 128, 128]).
    pub gnn_dims: Vec<usize>,
    /// Prediction-head MLP widths (Table 20: [200, 200, 200]).
    pub head_dims: Vec<usize>,
    /// GNN module choice (Table 20: DGF+GAT ensemble).
    pub gnn_module: GnnModuleKind,
    /// Whether operations get hardware-specific embeddings (§5.1; Table 2
    /// "OPHW"). When off, the hardware embedding conditions only the head.
    pub op_hw: bool,
    /// Whether the target device's embedding is initialized from the most
    /// correlated source device (§5.2; Table 2 "INIT").
    pub hw_init: bool,
    /// Supplementary encoding concatenated before the head (§3.3; Table 4).
    pub supplement: Option<EncodingKind>,
    /// Training loss.
    pub loss: LossKind,
    /// Hinge margin (only for [`LossKind::PairwiseHinge`]).
    pub hinge_margin: f32,
    /// Pre-training epochs (Table 20: 150).
    pub epochs: usize,
    /// Pre-training learning rate (Table 20: 1e-3).
    pub lr: f32,
    /// Weight decay (Table 20: 1e-5).
    pub weight_decay: f32,
    /// Mini-batch size (Table 20: 16).
    pub batch_size: usize,
    /// Fine-tuning epochs on the target device (Table 20: 40 NB201 / 30 FBNet).
    pub transfer_epochs: usize,
    /// Fine-tuning learning rate (Table 20: 3e-3 NB201 / 1e-3 FBNet).
    pub transfer_lr: f32,
    /// Gradient-clipping max norm.
    pub grad_clip: f32,
    /// Parameter-init / batching seed.
    pub seed: u64,
}

impl PredictorConfig {
    /// The paper's Table 20 configuration (NB201 transfer settings).
    pub fn paper() -> Self {
        PredictorConfig {
            op_dim: 48,
            hw_dim: 48,
            node_dim: 48,
            ophw_gnn_dims: vec![128, 128],
            ophw_mlp_dims: vec![128],
            gnn_dims: vec![128, 128, 128],
            head_dims: vec![200, 200, 200],
            gnn_module: GnnModuleKind::Ensemble,
            op_hw: true,
            hw_init: true,
            supplement: None,
            loss: LossKind::PairwiseHinge,
            hinge_margin: 0.1,
            epochs: 150,
            lr: 1e-3,
            weight_decay: 1e-5,
            batch_size: 16,
            transfer_epochs: 40,
            transfer_lr: 3e-3,
            grad_clip: 5.0,
            seed: 0,
        }
    }

    /// Reduced-budget profile for CPU-only runs: same architecture shape,
    /// smaller widths and fewer epochs.
    pub fn quick() -> Self {
        PredictorConfig {
            op_dim: 16,
            hw_dim: 16,
            node_dim: 16,
            ophw_gnn_dims: vec![32],
            ophw_mlp_dims: vec![32],
            gnn_dims: vec![32, 32],
            head_dims: vec![48, 48],
            epochs: 30,
            transfer_epochs: 30,
            ..Self::paper()
        }
    }

    /// FBNet transfer settings on top of any base config (Table 20 footnote:
    /// 30 transfer epochs at 1e-3).
    pub fn for_fbnet(mut self) -> Self {
        self.transfer_epochs = self.transfer_epochs.min(30);
        self.transfer_lr = 1e-3;
        self
    }

    /// Same config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same config with a different GNN module.
    pub fn with_gnn(mut self, gnn: GnnModuleKind) -> Self {
        self.gnn_module = gnn;
        self
    }

    /// Same config with a supplementary encoding.
    pub fn with_supplement(mut self, supplement: Option<EncodingKind>) -> Self {
        self.supplement = supplement;
        self
    }

    /// Joint op–hw width entering the small GNN.
    pub fn joint_dim(&self) -> usize {
        if self.op_hw {
            self.op_dim + self.hw_dim
        } else {
            self.op_dim
        }
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table20() {
        let c = PredictorConfig::paper();
        assert_eq!(c.op_dim, 48);
        assert_eq!(c.gnn_dims, vec![128, 128, 128]);
        assert_eq!(c.head_dims, vec![200, 200, 200]);
        assert_eq!(c.epochs, 150);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.gnn_module, GnnModuleKind::Ensemble);
        assert_eq!(c.loss, LossKind::PairwiseHinge);
    }

    #[test]
    fn fbnet_overrides_transfer_settings() {
        let c = PredictorConfig::paper().for_fbnet();
        assert_eq!(c.transfer_epochs, 30);
        assert_eq!(c.transfer_lr, 1e-3);
    }

    #[test]
    fn joint_dim_depends_on_ophw() {
        let mut c = PredictorConfig::quick();
        assert_eq!(c.joint_dim(), c.op_dim + c.hw_dim);
        c.op_hw = false;
        assert_eq!(c.joint_dim(), c.op_dim);
    }

    #[test]
    fn labels() {
        assert_eq!(GnnModuleKind::Ensemble.label(), "Ensemble");
        assert_eq!(GnnModuleKind::Dgf.label(), "DGF");
    }
}
