//! Dense row-major `f32` matrix.
//!
//! Everything in the predictor operates on small 2-D matrices (graphs have at
//! most a few dozen nodes and embeddings a few hundred columns), so a single
//! dense matrix type is sufficient — vectors are `1×c` or `r×1` matrices.

use rand::Rng;

use crate::kernels;

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Tensor { rows, cols, data }
    }

    /// Creates a `1×n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor {
            rows: 1,
            cols,
            data,
        }
    }

    /// Creates a `1×1` scalar matrix.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    /// Xavier/Glorot-uniform initialized matrix: `U(-a, a)` with
    /// `a = sqrt(6 / (rows + cols))`.
    pub fn xavier_uniform<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let a = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.random_range(-a..a)).collect();
        Tensor { rows, cols, data }
    }

    /// Uniform random matrix in `[lo, hi)`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols).map(|_| rng.random_range(lo..hi)).collect();
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Matrix product `self · other` via the cache-blocked
    /// [`kernels::matmul`] kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.cols);
        kernels::matmul(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed-right product `self · otherᵀ` without materializing the
    /// transpose — bit-identical to `self.matmul(&other.transpose())`.
    ///
    /// # Panics
    /// Panics unless both operands have the same column count.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.rows, other.rows);
        kernels::matmul_nt(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed-left product `selfᵀ · other` without materializing the
    /// transpose — bit-identical to `self.transpose().matmul(&other)`.
    ///
    /// # Panics
    /// Panics unless both operands have the same row count.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(self.cols, other.cols);
        kernels::matmul_tn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place `self += alpha * other` via the unrolled [`kernels::axpy`].
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Consumes the matrix, returning its row-major backing buffer (used by
    /// the autograd tape's arena to recycle allocations across passes).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// In-place fill with zeros.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True when any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transposed_products_match_explicit_transpose_bitwise() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 0.0, 3.0, -4.0, 5.0, 6.5]);
        let b = Tensor::from_vec(
            4,
            3,
            vec![
                7.0, 8.0, 0.0, 10.0, 1.5, 12.0, -2.0, 0.25, 9.0, 3.0, 4.0, 5.0,
            ],
        );
        let nt = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        assert_eq!(nt, via_t);

        let c = Tensor::from_vec(2, 4, vec![1.0, -2.0, 0.0, 4.0, 5.0, 6.0, 7.0, -8.0]);
        let tn = a.matmul_tn(&c);
        let via_t = a.transpose().matmul(&c);
        assert_eq!(tn, via_t);
    }

    #[test]
    #[should_panic(expected = "matmul_nt shape mismatch")]
    fn matmul_nt_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 4);
        let _ = a.matmul_nt(&b);
    }

    #[test]
    fn into_vec_round_trip() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::xavier_uniform(10, 20, &mut rng);
        let a = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&v| v >= -a && v < a));
    }

    #[test]
    fn axpy_adds_scaled() {
        let mut a = Tensor::full(2, 2, 1.0);
        let b = Tensor::full(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert_eq!(a, Tensor::full(2, 2, 2.0));
    }

    #[test]
    fn item_and_scalar() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(!t.has_non_finite());
        t.set(0, 1, f32::NAN);
        assert!(t.has_non_finite());
    }
}
