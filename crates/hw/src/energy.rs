//! Per-inference energy model (extension).
//!
//! The paper's framing (§4.1) lets the objective `ℓ : A → R` be latency,
//! accuracy, *or energy*; its evaluation covers latency only. This module
//! extends the device simulator with a consistent energy model so the same
//! predictor/sampler machinery can target energy:
//!
//! `E = P_static · T + e_mac · FLOPs · batch + e_mem · mem · batch`
//!
//! — static power integrated over the (clean) latency plus dynamic
//! per-operation energy. Class-level power/efficiency constants follow the
//! usual embedded-vs-server envelope (mW-scale mCPUs, hundreds of watts for
//! server GPUs), jittered per device like the latency profile.

use crate::device::{Device, DeviceClass};
use crate::rng::{combine, lognormal_jitter};
use crate::sim::latency_clean_ms;
use nasflat_space::Arch;

/// Class-level power envelope: (static watts, picojoules per MAC,
/// picojoules per activation element moved).
fn class_power(class: DeviceClass) -> (f64, f64, f64) {
    match class {
        DeviceClass::Gpu => (80.0, 12.0, 40.0),
        DeviceClass::Cpu => (45.0, 25.0, 60.0),
        DeviceClass::MCpu => (0.8, 18.0, 45.0),
        DeviceClass::MGpu => (1.5, 9.0, 35.0),
        DeviceClass::MDsp => (0.9, 5.0, 30.0),
        DeviceClass::EGpu => (6.0, 10.0, 38.0),
        DeviceClass::ECpu => (2.5, 30.0, 70.0),
        DeviceClass::ETpu => (2.0, 1.5, 25.0),
        DeviceClass::Fpga => (10.0, 4.0, 28.0),
        DeviceClass::Asic => (0.3, 0.8, 20.0),
    }
}

/// Energy of one inference in millijoules (no measurement noise).
///
/// Deterministic per (device, architecture); consistent with
/// [`latency_clean_ms`](crate::latency_clean_ms), which supplies the static
/// term's integration time.
pub fn energy_clean_mj(device: &Device, arch: &Arch) -> f64 {
    let (static_w, pj_mac, pj_mem) = class_power(device.class());
    // per-device jitter, keyed separately from the latency profile
    let jitter =
        |idx: u64, sigma: f64| lognormal_jitter(combine(device.seed(), 0xE6E6 ^ idx), sigma);
    let static_w = static_w * jitter(1, 0.10);
    let pj_mac = pj_mac * jitter(2, 0.10);
    let pj_mem = pj_mem * jitter(3, 0.08);

    let profile = arch.cost_profile();
    let b = device.batch() as f64;
    let t_ms = latency_clean_ms(device, arch);
    // static: W * ms = mJ;  dynamic: pJ * count = 1e-9 mJ
    static_w * t_ms + (pj_mac * profile.total_flops * b + pj_mem * profile.total_mem * b) * 1e-9
}

/// Measured energy in millijoules: deterministic lognormal noise keyed by
/// (device, architecture), mirroring [`latency_ms`](crate::latency_ms).
pub fn energy_mj(device: &Device, arch: &Arch) -> f64 {
    let clean = energy_clean_mj(device, arch);
    let mut bytes = vec![0xEEu8];
    bytes.extend_from_slice(arch.genotype());
    let noise = lognormal_jitter(
        combine(device.seed() ^ 0xE0E0, crate::rng::fnv1a(&bytes)),
        device.profile().noise_sigma,
    );
    clean * noise
}

/// Measures a batch of architectures' energy on one device.
pub fn measure_energy_all(device: &Device, archs: &[Arch]) -> Vec<f32> {
    archs.iter().map(|a| energy_mj(device, a) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceRegistry;
    use nasflat_space::Space;

    fn archs(n: usize) -> Vec<Arch> {
        (0..n as u64)
            .map(|i| Arch::nb201_from_index(i * 521 % 15625))
            .collect()
    }

    #[test]
    fn energy_positive_finite_deterministic() {
        let reg = DeviceRegistry::nb201();
        let pool = archs(20);
        for dev in reg.devices().iter().step_by(5) {
            for a in &pool {
                let e = energy_mj(dev, a);
                assert!(e.is_finite() && e > 0.0, "{}: {e}", dev.name());
                assert_eq!(e, energy_mj(dev, a));
            }
        }
    }

    #[test]
    fn more_compute_costs_more_energy() {
        let reg = DeviceRegistry::nb201();
        let dev = reg.get("eyeriss").unwrap();
        let conv = Arch::new(Space::Nb201, vec![3; 6]);
        let skip = Arch::new(Space::Nb201, vec![1; 6]);
        assert!(energy_clean_mj(dev, &conv) > energy_clean_mj(dev, &skip));
    }

    #[test]
    fn asics_are_more_efficient_than_server_gpus() {
        // Energy per inference: a fixed-function int8 ASIC should beat a
        // 250 W-class fp32 GPU by a wide margin on the same cell.
        let reg = DeviceRegistry::nb201();
        let asic = reg.get("eyeriss").unwrap();
        let gpu = reg.get("titan_rtx_1").unwrap();
        let a = Arch::new(Space::Nb201, vec![3, 2, 1, 3, 2, 3]);
        assert!(
            energy_clean_mj(asic, &a) * 10.0 < energy_clean_mj(gpu, &a),
            "asic {} vs gpu {}",
            energy_clean_mj(asic, &a),
            energy_clean_mj(gpu, &a)
        );
    }

    #[test]
    fn energy_and_latency_rankings_differ() {
        // Energy is not a monotone function of latency: static-power-heavy
        // devices penalize *slow* cells, MAC-energy penalizes *compute* —
        // so the two metrics give different architecture rankings somewhere.
        use nasflat_metrics::spearman_rho;
        let reg = DeviceRegistry::nb201();
        let pool = archs(100);
        let mut differs = false;
        for dev in reg.devices().iter().step_by(3) {
            let lat: Vec<f32> = pool
                .iter()
                .map(|a| latency_clean_ms(dev, a) as f32)
                .collect();
            let en: Vec<f32> = pool
                .iter()
                .map(|a| energy_clean_mj(dev, a) as f32)
                .collect();
            if let Ok(rho) = spearman_rho(&lat, &en) {
                if rho < 0.995 {
                    differs = true;
                }
            }
        }
        assert!(
            differs,
            "energy should not be a pure re-ranking of latency everywhere"
        );
    }

    #[test]
    fn noise_is_bounded() {
        let reg = DeviceRegistry::nb201();
        let dev = reg.get("pixel3").unwrap();
        let a = Arch::nb201_from_index(999);
        let ratio = energy_mj(dev, &a) / energy_clean_mj(dev, &a);
        assert!((ratio - 1.0).abs() < 0.4);
    }
}
