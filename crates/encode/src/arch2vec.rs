//! Arch2Vec: unsupervised graph-autoencoder encoding (Yan et al. 2020).
//!
//! The original uses a variational graph isomorphism autoencoder; this
//! reproduction trains a deterministic graph autoencoder (see DESIGN.md §2):
//! a two-layer GCN encoder over the `A + I` propagation matrix, mean-pooled
//! into a latent vector, and an MLP decoder that reconstructs the flattened
//! adjacency–operation encoding. The latent is used downstream exactly as in
//! the paper — as a fixed unsupervised 32-dimensional representation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use nasflat_space::{Arch, Space};
use nasflat_tensor::{Activation, AdamConfig, Graph, Linear, Mlp, ParamStore, Tensor, Var};

/// Hyperparameters for Arch2Vec training.
#[derive(Debug, Clone)]
pub struct Arch2VecConfig {
    /// Latent encoding width (the paper uses 32).
    pub latent_dim: usize,
    /// GCN hidden width.
    pub hidden_dim: usize,
    /// Training epochs over the training pool.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for Arch2VecConfig {
    fn default() -> Self {
        Arch2VecConfig {
            latent_dim: 32,
            hidden_dim: 32,
            epochs: 30,
            batch_size: 32,
            lr: 3e-3,
            seed: 0,
        }
    }
}

impl Arch2VecConfig {
    /// A fast low-budget config for tests and smoke runs.
    pub fn quick() -> Self {
        Arch2VecConfig {
            latent_dim: 16,
            hidden_dim: 16,
            epochs: 6,
            batch_size: 32,
            ..Self::default()
        }
    }
}

/// A trained Arch2Vec encoder for one search space.
#[derive(Debug)]
pub struct Arch2Vec {
    space: Space,
    store: ParamStore,
    enc1: Linear,
    enc2: Linear,
    to_latent: Linear,
    decoder: Mlp,
    latent_dim: usize,
}

impl Arch2Vec {
    /// Trains an autoencoder on `pool` and returns the encoder.
    ///
    /// # Panics
    /// Panics if `pool` is empty or contains architectures from a different
    /// space than `pool[0]`.
    pub fn train(pool: &[Arch], cfg: &Arch2VecConfig) -> Self {
        assert!(!pool.is_empty(), "Arch2Vec needs a non-empty training pool");
        let space = pool[0].space();
        assert!(pool.iter().all(|a| a.space() == space), "mixed-space pool");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vocab = space.vocab_size();
        let n = space.graph_nodes();
        let adjop_dim = n * n + n * vocab;

        let mut store = ParamStore::new();
        let enc1 = Linear::new(&mut store, "a2v.enc1", vocab, cfg.hidden_dim, &mut rng);
        let enc2 = Linear::new(
            &mut store,
            "a2v.enc2",
            cfg.hidden_dim,
            cfg.hidden_dim,
            &mut rng,
        );
        let to_latent = Linear::new(
            &mut store,
            "a2v.latent",
            cfg.hidden_dim,
            cfg.latent_dim,
            &mut rng,
        );
        let decoder = Mlp::new(
            &mut store,
            "a2v.dec",
            &[cfg.latent_dim, cfg.hidden_dim * 2, adjop_dim],
            Activation::Relu,
            &mut rng,
        );
        let mut model = Arch2Vec {
            space,
            store,
            enc1,
            enc2,
            to_latent,
            decoder,
            latent_dim: cfg.latent_dim,
        };

        let adam = AdamConfig::default().with_lr(cfg.lr);
        let mut order: Vec<usize> = (0..pool.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch_size) {
                model.store.zero_grads();
                let mut g = Graph::new();
                let mut losses = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let arch = &pool[i];
                    let z = model.encode_on_tape(&mut g, arch);
                    let recon = model.decoder.forward(&mut g, &model.store, z);
                    let recon = g.sigmoid(recon);
                    let target = g.constant(Tensor::row_vector(arch.adjop_encoding()));
                    let d = g.sub(recon, target);
                    let sq = g.mul(d, d);
                    losses.push(g.sum_all(sq));
                }
                let total = g.sum_vars(&losses);
                let loss = g.scale(total, 1.0 / (chunk.len() * adjop_dim) as f32);
                g.backward(loss);
                g.write_grads(&mut model.store);
                model.store.clip_grad_norm(5.0);
                model.store.adam_step(&adam);
            }
        }
        model
    }

    /// The search space this encoder was trained on.
    pub fn space(&self) -> Space {
        self.space
    }

    /// Latent width.
    pub fn latent_dim(&self) -> usize {
        self.latent_dim
    }

    fn encode_on_tape(&self, g: &mut Graph, arch: &Arch) -> Var {
        let graph = arch.to_graph();
        let n = graph.num_nodes();
        let vocab = self.space.vocab_size();
        // One-hot operation features.
        let mut x = Tensor::zeros(n, vocab);
        for (i, &op) in graph.ops().iter().enumerate() {
            x.set(i, op, 1.0);
        }
        let x = g.constant(x);
        let p = g.constant(Tensor::from_vec(n, n, graph.propagation_matrix()));
        let h1 = self.enc1.forward(g, &self.store, x);
        let h1 = g.matmul(p, h1);
        let h1 = g.relu(h1);
        let h2 = self.enc2.forward(g, &self.store, h1);
        let h2 = g.matmul(p, h2);
        let h2 = g.relu(h2);
        let pooled = g.mean_rows(h2);
        let z = self.to_latent.forward(g, &self.store, pooled);
        g.tanh(z)
    }

    /// Encodes one architecture into its latent vector.
    ///
    /// # Panics
    /// Panics if `arch` belongs to a different space.
    pub fn encode(&self, arch: &Arch) -> Vec<f32> {
        assert_eq!(arch.space(), self.space, "arch from a different space");
        let mut g = Graph::new();
        let z = self.encode_on_tape(&mut g, arch);
        g.value(z).row(0).to_vec()
    }

    /// Mean element-wise reconstruction error on one architecture (used by
    /// tests and diagnostics).
    pub fn reconstruction_error(&self, arch: &Arch) -> f32 {
        let mut g = Graph::new();
        let z = self.encode_on_tape(&mut g, arch);
        let recon = self.decoder.forward(&mut g, &self.store, z);
        let recon = g.sigmoid(recon);
        let target = arch.adjop_encoding();
        let out = g.value(recon).row(0).to_vec();
        out.iter()
            .zip(&target)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / target.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_pool(n: usize) -> Vec<Arch> {
        (0..n as u64)
            .map(|i| Arch::nb201_from_index(i * 97 % 15625))
            .collect()
    }

    #[test]
    fn training_reduces_reconstruction_error() {
        let pool = small_pool(64);
        let mut cfg = Arch2VecConfig::quick();
        cfg.epochs = 1;
        let early = Arch2Vec::train(&pool, &cfg);
        cfg.epochs = 12;
        let late = Arch2Vec::train(&pool, &cfg);
        let probe = &pool[7];
        assert!(
            late.reconstruction_error(probe) < early.reconstruction_error(probe),
            "more training should reconstruct better"
        );
    }

    #[test]
    fn encodings_are_deterministic_and_right_size() {
        let pool = small_pool(32);
        let model = Arch2Vec::train(&pool, &Arch2VecConfig::quick());
        let a = Arch::nb201_from_index(4000);
        let e1 = model.encode(&a);
        let e2 = model.encode(&a);
        assert_eq!(e1, e2);
        assert_eq!(e1.len(), model.latent_dim());
        assert!(e1.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
    }

    #[test]
    fn different_archs_encode_differently() {
        let pool = small_pool(32);
        let model = Arch2Vec::train(&pool, &Arch2VecConfig::quick());
        let e1 = model.encode(&Arch::nb201_from_index(0));
        let e2 = model.encode(&Arch::nb201_from_index(15624));
        assert_ne!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_rejected() {
        let _ = Arch2Vec::train(&[], &Arch2VecConfig::quick());
    }
}
