//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment cannot reach crates.io, so this workspace-local
//! crate implements the subset of the rand 0.9 API that the NASFLAT
//! reproduction actually calls:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! - [`Rng::random_range`] over half-open and inclusive integer/float ranges,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates),
//! - [`seq::index::sample`] (partial Fisher–Yates without replacement).
//!
//! Everything is deterministic given the seed, which is what the
//! reproduction's experiment protocol depends on. The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of the real crate, so *sequences differ from upstream
//! rand*, but all statistical properties the workspace relies on
//! (uniformity, independence across seeds) hold.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random bits. Mirror of `rand_core::RngCore`, reduced to the
/// methods the workspace needs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided;
/// the workspace never seeds from byte arrays.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty, like upstream rand.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`, like upstream rand.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that [`Rng::random_range`] can sample from, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 24 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        // `start + span * unit` can round up to `end`; keep the half-open
        // contract (start < end guarantees next_down(end) >= start).
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

/// Uniform draw from `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is below 2^-64 per draw for the
/// pool sizes used here).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator standing in for `rand::rngs::StdRng`.
    ///
    /// Internally xoshiro256++ with SplitMix64 seed expansion. Not the
    /// upstream ChaCha12 core, so streams differ from the real crate, but
    /// quality is more than sufficient for shuffling and simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement, mirroring `rand::seq::index`.
    pub mod index {
        use crate::Rng;

        /// Result of [`sample`]: a set of distinct indices in random order.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Consume into a plain `Vec<usize>`.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly and
        /// in random order (partial Fisher–Yates).
        ///
        /// # Panics
        /// Panics if `amount > length`, like upstream rand.
        pub fn sample<R>(rng: &mut R, length: usize, amount: usize) -> IndexVec
        where
            R: Rng + ?Sized,
        {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a pool of {length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let d: f64 = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
            let i: u8 = rng.random_range(0..=255u8);
            let _ = i;
        }
    }

    /// Generator that always returns all-one bits, driving float sampling to
    /// its maximum `unit` value — the case where rounding could reach `end`.
    struct MaxRng;

    impl RngCore for MaxRng {
        fn next_u32(&mut self) -> u32 {
            u32::MAX
        }

        fn next_u64(&mut self) -> u64 {
            u64::MAX
        }
    }

    #[test]
    fn float_ranges_stay_half_open_at_max_unit() {
        let mut rng = MaxRng;
        let f: f32 = rng.random_range(1.0f32..2.0);
        assert!((1.0..2.0).contains(&f), "f32 sample {f} escaped [1, 2)");
        let d: f64 = rng.random_range(1.0f64..2.0);
        assert!((1.0..2.0).contains(&d), "f64 sample {d} escaped [1, 2)");
        // Adjacent-float span: the only representable value is `start`.
        let lo = 1.0f32;
        let hi = lo.next_up();
        assert_eq!(rng.random_range(lo..hi), lo);
    }

    #[test]
    fn random_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let picked = index::sample(&mut rng, 100, 20).into_vec();
        assert_eq!(picked.len(), 20);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(picked.iter().all(|&i| i < 100));
    }
}
