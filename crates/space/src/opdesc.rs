//! Semantic descriptors for operation vocabulary entries.
//!
//! The device simulator and layer-wise baselines need to know *what kind*
//! of computation each graph node performs (convolution vs pooling vs skip,
//! kernel size, grouping, depthwise share) — not just its vocabulary id.

use crate::arch::Space;

/// Broad operation category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Graph input token.
    Input,
    /// Graph output token.
    Output,
    /// The NB201 `none` (zeroize) op: the edge does not exist at runtime.
    None,
    /// Identity / skip connection.
    Skip,
    /// Plain convolution (NB201 1×1 / 3×3).
    Conv,
    /// Average pooling.
    Pool,
    /// FBNet MBConv-style block (expand → depthwise → project).
    Block,
}

/// Descriptor of one vocabulary entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpDesc {
    /// Operation category.
    pub kind: OpKind,
    /// Spatial kernel size (0 where not applicable).
    pub kernel: u8,
    /// Channel expansion ratio (1 where not applicable).
    pub expansion: u8,
    /// Convolution group count (1 = dense).
    pub groups: u8,
    /// Fraction of the op's FLOPs spent in depthwise convolution
    /// (0 for plain convs, >0 for MBConv blocks).
    pub dw_fraction: f32,
}

impl OpDesc {
    const fn simple(kind: OpKind) -> OpDesc {
        OpDesc {
            kind,
            kernel: 0,
            expansion: 1,
            groups: 1,
            dw_fraction: 0.0,
        }
    }
}

/// Depthwise FLOPs share of an MBConv block at a representative channel
/// width (`C_in = C_out = 64`): `k² / (C·e/g·(1 + [e>1]) + k²)` — small but
/// kernel-dependent.
fn block_dw_fraction(kernel: f64, expansion: f64, groups: f64) -> f32 {
    let c = 64.0;
    let dw = kernel * kernel;
    let pointwise = if expansion > 1.0 {
        2.0 * c / groups
    } else {
        c / groups
    };
    (dw / (dw + pointwise)) as f32
}

impl Space {
    /// Descriptor for a vocabulary id (0 = INPUT, 1 = OUTPUT, 2.. = ops).
    ///
    /// # Panics
    /// Panics if `vocab_id >= self.vocab_size()`.
    pub fn op_desc(self, vocab_id: usize) -> OpDesc {
        assert!(
            vocab_id < self.vocab_size(),
            "vocab id {vocab_id} out of range"
        );
        match vocab_id {
            0 => OpDesc::simple(OpKind::Input),
            1 => OpDesc::simple(OpKind::Output),
            _ => self.real_op_desc(vocab_id - 2),
        }
    }

    fn real_op_desc(self, op: usize) -> OpDesc {
        match self {
            Space::Nb201 => match op {
                0 => OpDesc::simple(OpKind::None),
                1 => OpDesc::simple(OpKind::Skip),
                2 => OpDesc {
                    kind: OpKind::Conv,
                    kernel: 1,
                    expansion: 1,
                    groups: 1,
                    dw_fraction: 0.0,
                },
                3 => OpDesc {
                    kind: OpKind::Conv,
                    kernel: 3,
                    expansion: 1,
                    groups: 1,
                    dw_fraction: 0.0,
                },
                4 => OpDesc {
                    kind: OpKind::Pool,
                    kernel: 3,
                    expansion: 1,
                    groups: 1,
                    dw_fraction: 0.0,
                },
                _ => unreachable!("invalid NB201 op {op}"),
            },
            Space::Fbnet => {
                if op == 8 {
                    return OpDesc::simple(OpKind::Skip);
                }
                let (kernel, expansion, groups) = match op {
                    0 => (3u8, 1u8, 1u8),
                    1 => (3, 1, 2),
                    2 => (3, 3, 1),
                    3 => (3, 6, 1),
                    4 => (5, 1, 1),
                    5 => (5, 1, 2),
                    6 => (5, 3, 1),
                    7 => (5, 6, 1),
                    _ => unreachable!("invalid FBNet op {op}"),
                };
                OpDesc {
                    kind: OpKind::Block,
                    kernel,
                    expansion,
                    groups,
                    dw_fraction: block_dw_fraction(kernel as f64, expansion as f64, groups as f64),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nb201_descriptors() {
        assert_eq!(Space::Nb201.op_desc(0).kind, OpKind::Input);
        assert_eq!(Space::Nb201.op_desc(1).kind, OpKind::Output);
        assert_eq!(Space::Nb201.op_desc(2).kind, OpKind::None);
        assert_eq!(Space::Nb201.op_desc(3).kind, OpKind::Skip);
        let c1 = Space::Nb201.op_desc(4);
        assert_eq!((c1.kind, c1.kernel), (OpKind::Conv, 1));
        let c3 = Space::Nb201.op_desc(5);
        assert_eq!((c3.kind, c3.kernel), (OpKind::Conv, 3));
        assert_eq!(Space::Nb201.op_desc(6).kind, OpKind::Pool);
    }

    #[test]
    fn fbnet_descriptors() {
        let b = Space::Fbnet.op_desc(2); // k3_e1
        assert_eq!(
            (b.kind, b.kernel, b.expansion, b.groups),
            (OpKind::Block, 3, 1, 1)
        );
        let g = Space::Fbnet.op_desc(3); // k3_e1_g2
        assert_eq!(g.groups, 2);
        let k5e6 = Space::Fbnet.op_desc(9); // k5_e6
        assert_eq!((k5e6.kernel, k5e6.expansion), (5, 6));
        assert_eq!(Space::Fbnet.op_desc(10).kind, OpKind::Skip);
    }

    #[test]
    fn dw_fraction_grows_with_kernel() {
        let k3 = Space::Fbnet.op_desc(2).dw_fraction;
        let k5 = Space::Fbnet.op_desc(6).dw_fraction;
        assert!(k5 > k3);
        assert!(k3 > 0.0 && k3 < 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = Space::Nb201.op_desc(7);
    }
}
