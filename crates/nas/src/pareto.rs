//! Latency–accuracy Pareto fronts (paper Figure 5 and the Table 8 plots).

/// One evaluated architecture in the latency–accuracy plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Measured latency in milliseconds (lower is better).
    pub latency_ms: f32,
    /// Accuracy in percent (higher is better).
    pub accuracy: f32,
}

/// Extracts the non-dominated front: points for which no other point is both
/// faster and at least as accurate (ties kept once). Returned sorted by
/// latency ascending.
pub fn pareto_front(points: &[Point]) -> Vec<Point> {
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                b.accuracy
                    .partial_cmp(&a.accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut front: Vec<Point> = Vec::new();
    let mut best_acc = f32::NEG_INFINITY;
    for p in sorted {
        if p.accuracy > best_acc {
            front.push(p);
            best_acc = p.accuracy;
        }
    }
    front
}

/// True when front `a` weakly dominates front `b`: for every point of `b`
/// there is a point of `a` that is at least as fast and at least as accurate.
pub fn dominates(a: &[Point], b: &[Point]) -> bool {
    b.iter().all(|q| {
        a.iter()
            .any(|p| p.latency_ms <= q.latency_ms && p.accuracy >= q.accuracy)
    })
}

/// Hypervolume indicator w.r.t. a reference point (`ref_latency` worst
/// latency, `ref_accuracy` worst accuracy): the area dominated by the front.
/// Larger is better; used to compare methods' fronts quantitatively.
pub fn hypervolume(front: &[Point], ref_latency: f32, ref_accuracy: f32) -> f32 {
    let mut pts = pareto_front(front);
    pts.retain(|p| p.latency_ms <= ref_latency && p.accuracy >= ref_accuracy);
    if pts.is_empty() {
        return 0.0;
    }
    // pts sorted by latency ascending with strictly increasing accuracy:
    // the dominated region is a union of disjoint horizontal strips, one per
    // front point, spanning [p.latency, ref_latency] × (prev_acc, p.accuracy].
    let mut area = 0.0f64;
    let mut prev_acc = ref_accuracy;
    for p in &pts {
        let width = (ref_latency - p.latency_ms) as f64;
        let height = (p.accuracy - prev_acc) as f64;
        if width > 0.0 && height > 0.0 {
            area += width * height;
            prev_acc = p.accuracy;
        }
    }
    area as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(l: f32, a: f32) -> Point {
        Point {
            latency_ms: l,
            accuracy: a,
        }
    }

    #[test]
    fn front_drops_dominated_points() {
        let pts = vec![p(10.0, 70.0), p(12.0, 69.0), p(15.0, 73.0), p(8.0, 65.0)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![p(8.0, 65.0), p(10.0, 70.0), p(15.0, 73.0)]);
    }

    #[test]
    fn front_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn dominance_checks() {
        let a = vec![p(8.0, 70.0), p(12.0, 73.0)];
        let b = vec![p(10.0, 69.0), p(13.0, 72.0)];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn hypervolume_grows_with_better_fronts() {
        let weak = vec![p(20.0, 66.0)];
        let strong = vec![p(10.0, 70.0), p(20.0, 73.0)];
        let hv_weak = hypervolume(&weak, 30.0, 60.0);
        let hv_strong = hypervolume(&strong, 30.0, 60.0);
        assert!(hv_strong > hv_weak);
        assert_eq!(hypervolume(&[], 30.0, 60.0), 0.0);
    }
}
